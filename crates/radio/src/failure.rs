//! Failure injection schedules.
//!
//! The robustness argument of the paper (Section 3.3) is qualitative: a
//! single node or link failure stalls the DFO token tour entirely, while
//! CFF keeps flooding through surviving nodes. [`FailurePlan`] turns that
//! into a measurable experiment: nodes crash (fail-stop) at scheduled
//! rounds — permanently via [`FailurePlan::kill_node`] or for a bounded
//! outage window via [`FailurePlan::kill_node_for`] — and individual
//! links can be severed from a given round onward. Failures are invisible
//! to the programs — a dead node simply never transmits and never
//! receives, exactly like a sensor whose battery died (or, for an outage
//! window, like one that rebooted and came back).

use crate::Round;
use dsnet_graph::NodeId;
use std::collections::HashMap;

/// One scheduled dead interval: `[from, until)`, with `until = None`
/// meaning the node never comes back (permanent fail-stop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outage {
    from: Round,
    until: Option<Round>,
}

impl Outage {
    fn covers(&self, round: Round) -> bool {
        round >= self.from && self.until.is_none_or(|u| round < u)
    }
}

/// Schedule of fail-stop node crashes, transient node outages and link
/// drops.
///
/// ```
/// use dsnet_radio::FailurePlan;
/// use dsnet_graph::NodeId;
///
/// let mut plan = FailurePlan::new();
/// plan.kill_node(NodeId(3), 5).kill_link(NodeId(0), NodeId(1), 2);
/// plan.kill_node_for(NodeId(4), 2, 3); // dead in rounds 2, 3, 4
/// assert!(!plan.node_dead(NodeId(3), 4));
/// assert!(plan.node_dead(NodeId(3), 5));
/// assert!(plan.node_dead(NodeId(4), 4));
/// assert!(!plan.node_dead(NodeId(4), 5)); // revived
/// assert!(plan.link_dead(NodeId(1), NodeId(0), 9)); // undirected
/// ```
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// Dead intervals per node, in insertion order (overlaps are legal).
    node_outages: HashMap<NodeId, Vec<Outage>>,
    /// Key is the edge with endpoints ordered (small, large).
    link_death: HashMap<(NodeId, NodeId), Round>,
}

impl FailurePlan {
    /// An empty schedule (nothing ever fails).
    pub fn new() -> Self {
        Self::default()
    }

    /// `node` crashes permanently at the *start* of `round` (it acts
    /// normally in all rounds `< round`).
    pub fn kill_node(&mut self, node: NodeId, round: Round) -> &mut Self {
        self.node_outages.entry(node).or_default().push(Outage {
            from: round,
            until: None,
        });
        self
    }

    /// `node` goes dark at the start of `round` and revives `duration`
    /// rounds later: it is dead during rounds `round .. round + duration`
    /// and acts normally again from round `round + duration` on. A zero
    /// `duration` is a no-op. Outage windows compose freely with each
    /// other, with permanent kills and with link kills.
    pub fn kill_node_for(&mut self, node: NodeId, round: Round, duration: Round) -> &mut Self {
        if duration == 0 {
            return self;
        }
        self.node_outages.entry(node).or_default().push(Outage {
            from: round,
            until: Some(round + duration),
        });
        self
    }

    /// The link `{a, b}` drops at the start of `round`: transmissions no
    /// longer cross it in either direction.
    pub fn kill_link(&mut self, a: NodeId, b: NodeId, round: Round) -> &mut Self {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.link_death
            .entry(key)
            .and_modify(|r| *r = (*r).min(round))
            .or_insert(round);
        self
    }

    /// Whether `node` is dead during `round`.
    pub fn node_dead(&self, node: NodeId, round: Round) -> bool {
        self.node_outages
            .get(&node)
            .is_some_and(|os| os.iter().any(|o| o.covers(round)))
    }

    /// Whether the link `{a, b}` is down during `round`.
    pub fn link_dead(&self, a: NodeId, b: NodeId, round: Round) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.link_death.get(&key).is_some_and(|&r| round >= r)
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.node_outages.is_empty() && self.link_death.is_empty()
    }

    /// Nodes scheduled to die *permanently* (never revive), with the
    /// earliest round their permanent death takes effect.
    pub fn doomed_nodes(&self) -> impl Iterator<Item = (NodeId, Round)> + '_ {
        self.node_outages.iter().filter_map(|(&n, os)| {
            os.iter()
                .filter(|o| o.until.is_none())
                .map(|o| o.from)
                .min()
                .map(|r| (n, r))
        })
    }

    /// Every node with any scheduled outage (permanent or transient).
    pub fn affected_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_outages.keys().copied()
    }

    /// Whether `node` transitions alive→dead at the start of `round`.
    pub fn dies_at(&self, node: NodeId, round: Round) -> bool {
        self.node_dead(node, round) && (round == 0 || !self.node_dead(node, round - 1))
    }

    /// Whether `node` transitions dead→alive at the start of `round`.
    pub fn revives_at(&self, node: NodeId, round: Round) -> bool {
        round > 0 && !self.node_dead(node, round) && self.node_dead(node, round - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_death_takes_effect_at_round() {
        let mut p = FailurePlan::new();
        p.kill_node(NodeId(3), 5);
        assert!(!p.node_dead(NodeId(3), 4));
        assert!(p.node_dead(NodeId(3), 5));
        assert!(p.node_dead(NodeId(3), 100));
        assert!(!p.node_dead(NodeId(2), 100));
    }

    #[test]
    fn earliest_schedule_wins() {
        let mut p = FailurePlan::new();
        p.kill_node(NodeId(1), 10)
            .kill_node(NodeId(1), 3)
            .kill_node(NodeId(1), 7);
        assert!(p.node_dead(NodeId(1), 3));
        assert!(!p.node_dead(NodeId(1), 2));
    }

    #[test]
    fn links_are_undirected() {
        let mut p = FailurePlan::new();
        p.kill_link(NodeId(2), NodeId(1), 4);
        assert!(p.link_dead(NodeId(1), NodeId(2), 4));
        assert!(p.link_dead(NodeId(2), NodeId(1), 9));
        assert!(!p.link_dead(NodeId(1), NodeId(2), 3));
        assert!(!p.link_dead(NodeId(1), NodeId(3), 9));
    }

    #[test]
    fn empty_plan_kills_nothing() {
        let p = FailurePlan::new();
        assert!(p.is_empty());
        assert!(!p.node_dead(NodeId(0), 1_000_000));
    }

    #[test]
    fn duplicate_link_kills_keep_earliest_round_across_orientations() {
        // {4,9} scheduled three times, in both orientations: the two
        // orderings must alias to one edge and the earliest round wins —
        // a later re-schedule can never resurrect the link.
        let mut p = FailurePlan::new();
        p.kill_link(NodeId(4), NodeId(9), 8)
            .kill_link(NodeId(9), NodeId(4), 2)
            .kill_link(NodeId(4), NodeId(9), 50);
        assert!(!p.link_dead(NodeId(4), NodeId(9), 1));
        assert!(p.link_dead(NodeId(9), NodeId(4), 2));
        assert!(p.link_dead(NodeId(4), NodeId(9), 2));
    }

    #[test]
    fn node_killed_at_round_zero_never_lives() {
        let mut p = FailurePlan::new();
        p.kill_node(NodeId(7), 0);
        assert!(p.node_dead(NodeId(7), 0));
        assert!(p.node_dead(NodeId(7), 1));
    }

    #[test]
    fn killing_an_already_dead_node_is_a_noop() {
        // Dead at round 0; a second, later schedule must not delay the
        // death, and the plan must still report a single doomed entry at
        // the earliest round.
        let mut p = FailurePlan::new();
        p.kill_node(NodeId(7), 0).kill_node(NodeId(7), 12);
        assert!(p.node_dead(NodeId(7), 0));
        let doomed: Vec<_> = p.doomed_nodes().collect();
        assert_eq!(doomed, vec![(NodeId(7), 0)]);
    }

    #[test]
    fn outage_window_revives_the_node() {
        let mut p = FailurePlan::new();
        p.kill_node_for(NodeId(2), 5, 3);
        assert!(!p.node_dead(NodeId(2), 4));
        assert!(p.node_dead(NodeId(2), 5));
        assert!(p.node_dead(NodeId(2), 7));
        assert!(!p.node_dead(NodeId(2), 8));
        // A transient outage is not a doomed node.
        assert_eq!(p.doomed_nodes().count(), 0);
        assert_eq!(p.affected_nodes().count(), 1);
    }

    #[test]
    fn zero_duration_outage_is_a_noop() {
        let mut p = FailurePlan::new();
        p.kill_node_for(NodeId(1), 5, 0);
        assert!(p.is_empty());
        assert!(!p.node_dead(NodeId(1), 5));
    }

    #[test]
    fn overlapping_outages_union() {
        let mut p = FailurePlan::new();
        p.kill_node_for(NodeId(3), 2, 4) // dead 2..6
            .kill_node_for(NodeId(3), 4, 5); // dead 4..9
        for r in 2..9 {
            assert!(p.node_dead(NodeId(3), r), "round {r}");
        }
        assert!(!p.node_dead(NodeId(3), 1));
        assert!(!p.node_dead(NodeId(3), 9));
    }

    #[test]
    fn outage_then_permanent_kill_composes() {
        let mut p = FailurePlan::new();
        p.kill_node_for(NodeId(5), 2, 2); // dead 2..4
        p.kill_node(NodeId(5), 10); // dead 10..
        assert!(p.node_dead(NodeId(5), 3));
        assert!(!p.node_dead(NodeId(5), 5));
        assert!(p.node_dead(NodeId(5), 11));
        let doomed: Vec<_> = p.doomed_nodes().collect();
        assert_eq!(doomed, vec![(NodeId(5), 10)]);
    }

    #[test]
    fn death_and_revival_transitions() {
        let mut p = FailurePlan::new();
        p.kill_node_for(NodeId(1), 3, 2); // dead 3, 4
        assert!(p.dies_at(NodeId(1), 3));
        assert!(!p.dies_at(NodeId(1), 4));
        assert!(p.revives_at(NodeId(1), 5));
        assert!(!p.revives_at(NodeId(1), 4));
        assert!(!p.revives_at(NodeId(1), 6));
    }
}
