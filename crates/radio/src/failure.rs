//! Failure injection schedules.
//!
//! The robustness argument of the paper (Section 3.3) is qualitative: a
//! single node or link failure stalls the DFO token tour entirely, while
//! CFF keeps flooding through surviving nodes. [`FailurePlan`] turns that
//! into a measurable experiment: nodes crash (fail-stop) at scheduled
//! rounds, and individual links can be severed from a given round onward.
//! Failures are invisible to the programs — a dead node simply never
//! transmits and never receives, exactly like a sensor whose battery died.

use crate::Round;
use dsnet_graph::NodeId;
use std::collections::HashMap;

/// Schedule of fail-stop node crashes and link drops.
///
/// ```
/// use dsnet_radio::FailurePlan;
/// use dsnet_graph::NodeId;
///
/// let mut plan = FailurePlan::new();
/// plan.kill_node(NodeId(3), 5).kill_link(NodeId(0), NodeId(1), 2);
/// assert!(!plan.node_dead(NodeId(3), 4));
/// assert!(plan.node_dead(NodeId(3), 5));
/// assert!(plan.link_dead(NodeId(1), NodeId(0), 9)); // undirected
/// ```
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    node_death: HashMap<NodeId, Round>,
    /// Key is the edge with endpoints ordered (small, large).
    link_death: HashMap<(NodeId, NodeId), Round>,
}

impl FailurePlan {
    /// An empty schedule (nothing ever fails).
    pub fn new() -> Self {
        Self::default()
    }

    /// `node` crashes at the *start* of `round` (it acts normally in all
    /// rounds `< round`). If scheduled twice, the earliest round wins.
    pub fn kill_node(&mut self, node: NodeId, round: Round) -> &mut Self {
        self.node_death
            .entry(node)
            .and_modify(|r| *r = (*r).min(round))
            .or_insert(round);
        self
    }

    /// The link `{a, b}` drops at the start of `round`: transmissions no
    /// longer cross it in either direction.
    pub fn kill_link(&mut self, a: NodeId, b: NodeId, round: Round) -> &mut Self {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.link_death
            .entry(key)
            .and_modify(|r| *r = (*r).min(round))
            .or_insert(round);
        self
    }

    /// Whether `node` is dead during `round`.
    pub fn node_dead(&self, node: NodeId, round: Round) -> bool {
        self.node_death.get(&node).is_some_and(|&r| round >= r)
    }

    /// Whether the link `{a, b}` is down during `round`.
    pub fn link_dead(&self, a: NodeId, b: NodeId, round: Round) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.link_death.get(&key).is_some_and(|&r| round >= r)
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.node_death.is_empty() && self.link_death.is_empty()
    }

    /// Nodes scheduled to die (any round).
    pub fn doomed_nodes(&self) -> impl Iterator<Item = (NodeId, Round)> + '_ {
        self.node_death.iter().map(|(&n, &r)| (n, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_death_takes_effect_at_round() {
        let mut p = FailurePlan::new();
        p.kill_node(NodeId(3), 5);
        assert!(!p.node_dead(NodeId(3), 4));
        assert!(p.node_dead(NodeId(3), 5));
        assert!(p.node_dead(NodeId(3), 100));
        assert!(!p.node_dead(NodeId(2), 100));
    }

    #[test]
    fn earliest_schedule_wins() {
        let mut p = FailurePlan::new();
        p.kill_node(NodeId(1), 10)
            .kill_node(NodeId(1), 3)
            .kill_node(NodeId(1), 7);
        assert!(p.node_dead(NodeId(1), 3));
        assert!(!p.node_dead(NodeId(1), 2));
    }

    #[test]
    fn links_are_undirected() {
        let mut p = FailurePlan::new();
        p.kill_link(NodeId(2), NodeId(1), 4);
        assert!(p.link_dead(NodeId(1), NodeId(2), 4));
        assert!(p.link_dead(NodeId(2), NodeId(1), 9));
        assert!(!p.link_dead(NodeId(1), NodeId(2), 3));
        assert!(!p.link_dead(NodeId(1), NodeId(3), 9));
    }

    #[test]
    fn empty_plan_kills_nothing() {
        let p = FailurePlan::new();
        assert!(p.is_empty());
        assert!(!p.node_dead(NodeId(0), 1_000_000));
    }

    #[test]
    fn duplicate_link_kills_keep_earliest_round_across_orientations() {
        // {4,9} scheduled three times, in both orientations: the two
        // orderings must alias to one edge and the earliest round wins —
        // a later re-schedule can never resurrect the link.
        let mut p = FailurePlan::new();
        p.kill_link(NodeId(4), NodeId(9), 8)
            .kill_link(NodeId(9), NodeId(4), 2)
            .kill_link(NodeId(4), NodeId(9), 50);
        assert!(!p.link_dead(NodeId(4), NodeId(9), 1));
        assert!(p.link_dead(NodeId(9), NodeId(4), 2));
        assert!(p.link_dead(NodeId(4), NodeId(9), 2));
    }

    #[test]
    fn node_killed_at_round_zero_never_lives() {
        let mut p = FailurePlan::new();
        p.kill_node(NodeId(7), 0);
        assert!(p.node_dead(NodeId(7), 0));
        assert!(p.node_dead(NodeId(7), 1));
    }

    #[test]
    fn killing_an_already_dead_node_is_a_noop() {
        // Dead at round 0; a second, later schedule must not delay the
        // death, and the plan must still report a single doomed entry at
        // the earliest round.
        let mut p = FailurePlan::new();
        p.kill_node(NodeId(7), 0).kill_node(NodeId(7), 12);
        assert!(p.node_dead(NodeId(7), 0));
        let doomed: Vec<_> = p.doomed_nodes().collect();
        assert_eq!(doomed, vec![(NodeId(7), 0)]);
    }
}
