//! Optional event traces for debugging and verification.
//!
//! The engine can record every transmission, delivery and collision. The
//! collision events are *observer-only*: the simulated nodes never learn
//! about them (the model has no collision detection), but tests use the
//! trace to prove e.g. that a slot assignment really was collision-free at
//! every receiver that mattered.

use crate::action::Channel;
use crate::Round;
use dsnet_graph::NodeId;

/// One observable event in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing event attributes
pub enum TraceEvent {
    /// `node` transmitted on `channel`.
    Transmit {
        round: Round,
        node: NodeId,
        channel: Channel,
    },
    /// `to` cleanly received the round's message from `from`.
    Deliver {
        round: Round,
        from: NodeId,
        to: NodeId,
        channel: Channel,
    },
    /// `node` was listening on `channel` while ≥ 2 of its neighbours
    /// transmitted on it — the message(s) were destroyed at this receiver.
    Collision {
        round: Round,
        node: NodeId,
        channel: Channel,
        transmitters: u32,
    },
    /// `node` died (fail-stop or outage start) at the start of `round`.
    NodeDeath { round: Round, node: NodeId },
    /// `node` came back from a transient outage at the start of `round`.
    NodeRevive { round: Round, node: NodeId },
    /// The transmission `from → to` was destroyed by channel loss while
    /// `to` was listening on `channel` (see `LossModel`). Like collisions,
    /// drops are observer-only: the receiver just hears silence.
    LinkDrop {
        round: Round,
        from: NodeId,
        to: NodeId,
        channel: Channel,
    },
}

impl TraceEvent {
    /// The round the event happened in.
    pub fn round(&self) -> Round {
        match *self {
            TraceEvent::Transmit { round, .. }
            | TraceEvent::Deliver { round, .. }
            | TraceEvent::Collision { round, .. }
            | TraceEvent::NodeDeath { round, .. }
            | TraceEvent::NodeRevive { round, .. }
            | TraceEvent::LinkDrop { round, .. } => round,
        }
    }
}

/// An append-only event log. Disabled traces cost nothing.
///
/// Besides the event stream, a trace carries *diagnostic warnings* —
/// structured notes about benign-but-surprising behaviour (e.g. the
/// documented k=1 leaf-window collisions of Algorithm 2). Warnings are
/// data, never stderr output: quiet runs stay quiet, and consumers that
/// care inspect [`Trace::warnings`] explicitly.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
    warnings: Vec<String>,
}

impl Trace {
    /// A recording trace.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            events: Vec::new(),
            warnings: Vec::new(),
        }
    }

    /// A recording trace with pre-reserved event storage — lets callers
    /// that know the expected event volume avoid reallocation churn.
    pub fn enabled_with_capacity(events: usize) -> Self {
        Self {
            enabled: true,
            events: Vec::with_capacity(events),
            warnings: Vec::new(),
        }
    }

    /// A no-op trace (records nothing, costs nothing).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event (no-op when disabled).
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Record a diagnostic warning (no-op when disabled). Warnings flow
    /// through the trace instead of stderr so that library code never
    /// prints: quiet runs stay quiet, loud facts stay queryable.
    pub fn warn(&mut self, msg: impl Into<String>) {
        if self.enabled {
            self.warnings.push(msg.into());
        }
    }

    /// All recorded diagnostic warnings, in order.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of collision events at listening receivers over the run, or
    /// `None` when the trace was disabled and the count is unknowable.
    ///
    /// This is the honest accessor: a disabled trace must not masquerade
    /// as a collision-free run.
    pub fn try_collision_count(&self) -> Option<usize> {
        self.enabled.then(|| {
            self.events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Collision { .. }))
                .count()
        })
    }

    /// Number of collision events at listening receivers over the run.
    ///
    /// # Panics
    ///
    /// Panics when the trace was disabled — a disabled trace has no
    /// collision information, and returning 0 here historically made runs
    /// look collision-free when nothing was measured. Use
    /// [`Trace::try_collision_count`] to handle the disabled case.
    pub fn collision_count(&self) -> usize {
        self.try_collision_count()
            .expect("collision_count() on a disabled trace: enable record_trace or use try_collision_count()")
    }

    /// Number of receptions destroyed by channel loss, or `None` when the
    /// trace was disabled and the count is unknowable.
    pub fn try_drop_count(&self) -> Option<usize> {
        self.enabled.then(|| {
            self.events
                .iter()
                .filter(|e| matches!(e, TraceEvent::LinkDrop { .. }))
                .count()
        })
    }

    /// Number of clean deliveries over the run.
    pub fn delivery_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Deliver { .. }))
            .count()
    }

    /// All deliveries made to `node`.
    pub fn deliveries_to(&self, node: NodeId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Deliver { to, .. } if *to == node))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TraceEvent::Transmit {
            round: 1,
            node: NodeId(0),
            channel: 0,
        });
        t.warn("should vanish");
        assert!(t.is_empty());
        assert_eq!(t.try_collision_count(), None);
        assert!(t.warnings().is_empty());
    }

    #[test]
    fn warnings_are_recorded_in_order() {
        let mut t = Trace::enabled();
        t.warn("first");
        t.warn(String::from("second"));
        assert_eq!(t.warnings(), ["first", "second"]);
        // Warnings are diagnostics, not events.
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "disabled trace")]
    fn disabled_trace_collision_count_panics() {
        Trace::disabled().collision_count();
    }

    #[test]
    fn enabled_trace_counts_kinds() {
        let mut t = Trace::enabled();
        t.push(TraceEvent::Transmit {
            round: 1,
            node: NodeId(0),
            channel: 0,
        });
        t.push(TraceEvent::Deliver {
            round: 1,
            from: NodeId(0),
            to: NodeId(1),
            channel: 0,
        });
        t.push(TraceEvent::Collision {
            round: 2,
            node: NodeId(2),
            channel: 0,
            transmitters: 3,
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.delivery_count(), 1);
        assert_eq!(t.collision_count(), 1);
        assert_eq!(t.deliveries_to(NodeId(1)).len(), 1);
        assert_eq!(t.deliveries_to(NodeId(2)).len(), 0);
    }

    #[test]
    fn event_round_accessor() {
        let e = TraceEvent::NodeDeath {
            round: 9,
            node: NodeId(4),
        };
        assert_eq!(e.round(), 9);
    }
}
