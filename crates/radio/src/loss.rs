//! Probabilistic lossy-channel model.
//!
//! Real sensor links are not binary: beyond hard failures
//! ([`FailurePlan`](crate::FailurePlan)), packets vanish with some
//! probability per transmission. [`LossModel`] adds per-link Bernoulli
//! loss on top of the graph: a transmission from `u` heard by `v` in
//! round `r` is independently destroyed with probability `p`.
//!
//! Determinism is the whole design: the drop decision for a directed link
//! and round is a *pure function* of `(seed, u, v, round)` — a stateless
//! SplitMix64 hash, not a stateful RNG — so the outcome is independent of
//! the order in which receivers are evaluated, of how many other links
//! exist, and of how many worker threads a campaign uses. Every directed
//! link effectively owns its own seed-stable random stream, which is what
//! keeps campaign artifacts byte-identical across `--threads` values.
//!
//! Loss probabilities are quantised to parts-per-million so the model is
//! hashable/comparable and the campaign axis labels round-trip exactly.

use crate::Round;
use dsnet_graph::NodeId;

/// Denominator of the quantised loss probability.
pub const PPM_SCALE: u32 = 1_000_000;

/// SplitMix64 finalizer — the same mixer `dsnet_geom::rng::derive_seed`
/// uses, reproduced here so the radio crate stays dependency-free.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-link Bernoulli packet loss with a seed-stable per-link stream.
///
/// ```
/// use dsnet_radio::LossModel;
/// use dsnet_graph::NodeId;
///
/// let loss = LossModel::from_probability(0.5, 42);
/// // Pure function of (seed, link, round): always the same answer.
/// let a = loss.dropped(NodeId(0), NodeId(1), 7);
/// assert_eq!(a, loss.dropped(NodeId(0), NodeId(1), 7));
/// assert!(!LossModel::none().dropped(NodeId(0), NodeId(1), 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LossModel {
    /// Loss probability in parts-per-million (`0` = lossless).
    ppm: u32,
    /// Base seed of the per-link streams.
    seed: u64,
}

impl LossModel {
    /// The lossless model (drops nothing, costs nothing).
    pub fn none() -> Self {
        Self::default()
    }

    /// A model dropping each reception with probability `ppm / 1e6`.
    pub fn from_ppm(ppm: u32, seed: u64) -> Self {
        assert!(ppm <= PPM_SCALE, "loss probability above 1.0");
        Self { ppm, seed }
    }

    /// A model dropping each reception with probability `p ∈ [0, 1]`
    /// (quantised to parts-per-million).
    pub fn from_probability(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} not in [0,1]"
        );
        Self::from_ppm((p * PPM_SCALE as f64).round() as u32, seed)
    }

    /// The quantised loss probability in parts-per-million.
    pub fn ppm(&self) -> u32 {
        self.ppm
    }

    /// The loss probability as a float.
    pub fn probability(&self) -> f64 {
        self.ppm as f64 / PPM_SCALE as f64
    }

    /// Whether this model never drops anything.
    pub fn is_none(&self) -> bool {
        self.ppm == 0
    }

    /// Whether the transmission `from → to` is destroyed in `round`.
    ///
    /// A pure function of `(seed, from, to, round)`; each direction of a
    /// link draws from its own stream (real radio links are asymmetric).
    #[inline]
    pub fn dropped(&self, from: NodeId, to: NodeId, round: Round) -> bool {
        if self.ppm == 0 {
            return false;
        }
        let link = ((from.0 as u64) << 32) | to.0 as u64;
        let draw = mix(mix(self.seed ^ link) ^ round);
        (draw % PPM_SCALE as u64) < self.ppm as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let loss = LossModel::none();
        assert!(loss.is_none());
        for r in 0..100 {
            assert!(!loss.dropped(NodeId(0), NodeId(1), r));
        }
    }

    #[test]
    fn full_loss_always_drops() {
        let loss = LossModel::from_probability(1.0, 9);
        for r in 1..50 {
            assert!(loss.dropped(NodeId(3), NodeId(4), r));
        }
    }

    #[test]
    fn drops_are_deterministic_and_seed_sensitive() {
        let a = LossModel::from_probability(0.5, 1);
        let b = LossModel::from_probability(0.5, 2);
        let draws_a: Vec<bool> = (0..64)
            .map(|r| a.dropped(NodeId(5), NodeId(6), r))
            .collect();
        let draws_a2: Vec<bool> = (0..64)
            .map(|r| a.dropped(NodeId(5), NodeId(6), r))
            .collect();
        let draws_b: Vec<bool> = (0..64)
            .map(|r| b.dropped(NodeId(5), NodeId(6), r))
            .collect();
        assert_eq!(draws_a, draws_a2);
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn directions_are_independent_streams() {
        let loss = LossModel::from_probability(0.5, 7);
        let fwd: Vec<bool> = (0..64)
            .map(|r| loss.dropped(NodeId(1), NodeId(2), r))
            .collect();
        let rev: Vec<bool> = (0..64)
            .map(|r| loss.dropped(NodeId(2), NodeId(1), r))
            .collect();
        assert_ne!(fwd, rev);
    }

    #[test]
    fn empirical_rate_tracks_probability() {
        let loss = LossModel::from_probability(0.1, 2024);
        let mut drops = 0u32;
        let trials = 20_000u32;
        for r in 0..trials as u64 {
            if loss.dropped(NodeId(11), NodeId(12), r) {
                drops += 1;
            }
        }
        let rate = drops as f64 / trials as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn probability_roundtrips_through_ppm() {
        let loss = LossModel::from_probability(0.05, 0);
        assert_eq!(loss.ppm(), 50_000);
        assert_eq!(loss.probability(), 0.05);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn out_of_range_probability_panics() {
        LossModel::from_probability(1.5, 0);
    }
}
