//! The lock-step execution engine.
//!
//! # Round structure (cell-sharded)
//!
//! Every round runs in three passes over the node-id cells of the
//! installed [`ShardPlan`] (a single implicit cell unless one is set):
//!
//! 1. **Act** — each due node's `act()` fills flat struct-of-arrays
//!    scratch tables: `tx_on` (transmit channel per id), `listen_on`,
//!    and `tx_msg` (the message, stored only for transmitters).
//! 2. **Resolve** — each listening node scans its CSR adjacency row
//!    against the *global* `tx_on` table, buffers its dropped
//!    receptions in per-cell scratch, and applies `on_receive` for
//!    clean single-transmitter rounds. Writes stay within the node's
//!    own cell, so cells resolve independently (and, under
//!    [`Engine::run_parallel`], concurrently).
//! 3. **Merge** — the per-cell buffers are serialised into the trace
//!    in canonical global id order and the done/undone counters are
//!    aggregated, in deterministic cell order.
//!
//! Delivery is a pure function of the transmit table, graph, failure
//! plan and the stateless per-(seed, link, round) loss hash, so the
//! cell structure and worker count are invisible in every output: the
//! event stream, energy meters and counters are byte-identical across
//! 1 cell, N cells, 1 thread and N threads.
//!
//! # Sleep skipping
//!
//! Programs may implement [`NodeProgram::next_wake`] to declare the
//! next round they could possibly act in. The engine then skips their
//! `act()` calls entirely for the intervening rounds, crediting the
//! skipped rounds to the sleep meter in one batch. Because a skipped
//! node neither transmits, listens, nor mutates state, the run is
//! observationally identical to consulting it every round — this is
//! what makes 100k-node fields cheap: per Theorem 1 a CFF node is
//! awake O(δ·k + Δ) rounds, so simulation cost tracks *energy*, not
//! `n × rounds`. Hints are ignored when a failure plan is installed
//! (dead rounds must not be mis-credited as sleep).

use crate::action::Action;
use crate::energy::{EnergyMeter, EnergyReport};
use crate::failure::FailurePlan;
use crate::loss::LossModel;
use crate::shard::ShardPlan;
use crate::trace::{Trace, TraceEvent};
use crate::Round;
use dsnet_graph::{Graph, NodeId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// Read-only per-callback context handed to node programs.
#[derive(Debug, Clone, Copy)]
pub struct NodeCtx {
    /// The node this callback concerns.
    pub id: NodeId,
    /// Current round, 1-based.
    pub round: Round,
    /// Number of available radio channels `k`.
    pub channels: u8,
}

/// A per-node protocol state machine.
///
/// Programs only see their own callbacks — all coordination must go through
/// transmitted messages, exactly as on real hardware. Collisions are
/// silent: a round in which two neighbours transmit simultaneously is
/// indistinguishable from a round in which nobody did.
pub trait NodeProgram {
    /// Message type carried over the air.
    type Msg: Clone;

    /// Decide this round's action. Called once per round while the node is
    /// alive.
    fn act(&mut self, ctx: &NodeCtx) -> Action<Self::Msg>;

    /// Called when the node was listening and exactly one neighbour
    /// transmitted on its channel. `from` models the sender id carried in
    /// every packet header.
    fn on_receive(&mut self, ctx: &NodeCtx, from: NodeId, msg: &Self::Msg);

    /// Whether this node considers the protocol locally complete. The run
    /// ends early once every live node is done.
    fn done(&self) -> bool {
        false
    }

    /// Earliest future round in which this node might do anything other
    /// than sleep, given its state after the `now` callbacks. Returning
    /// `Some(w)` promises that every `act()` between `now` and `w`
    /// (exclusive) would return [`Action::Sleep`] *without mutating any
    /// state* — the engine then skips those calls and batch-credits the
    /// sleep meter. `None` (the default) means "consult me every round".
    ///
    /// The hint is consulted again after every callback, so a program
    /// woken early by `on_receive` can shorten its own schedule. Hints
    /// are ignored while a failure plan is installed.
    fn next_wake(&self, now: Round) -> Option<Round> {
        let _ = now;
        None
    }
}

/// Engine settings.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of radio channels `k ≥ 1`.
    pub channels: u8,
    /// Hard round limit (the run fails over to [`StopReason::RoundLimit`]).
    pub max_rounds: Round,
    /// Record a full event trace.
    ///
    /// Defaults to `true` (matching `RunConfig` in `dsnet-protocols`):
    /// collision counts are only measurable from the trace, and a silent
    /// zero from an unrecorded run is worse than the memory cost of
    /// recording. Large sweeps that don't need collision data should
    /// disable it explicitly.
    pub record_trace: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            channels: 1,
            max_rounds: 1_000_000,
            record_trace: true,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every live node reported `done()`.
    AllDone,
    /// `max_rounds` elapsed first.
    RoundLimit,
}

/// Result of [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Rounds actually executed.
    pub rounds: Round,
    /// Why the run ended.
    pub stop: StopReason,
}

/// Sentinel in the per-round transmit-channel table: "not transmitting".
/// Valid channels are `< config.channels ≤ 255`, so 255 never collides.
const NO_TX: u8 = u8::MAX;

/// Wake sentinel for id slots that never act (no program).
const NEVER: Round = Round::MAX;

/// A reception destroyed by channel loss, buffered per cell during the
/// resolve pass. `pos` is the index of `from` in `to`'s adjacency row,
/// so sorting by `(to, pos)` reproduces the order a sequential
/// listener-by-listener scan would have emitted the drops in.
#[derive(Debug, Clone, Copy)]
struct DropRec {
    to: u32,
    pos: u32,
    from: u32,
}

/// Per-cell scratch, reused across rounds. Written only by the worker
/// that owns the cell; read by the main thread during the merge pass.
#[derive(Debug, Default)]
struct CellScratch {
    /// Nodes consulted this round (ascending ids — cell order).
    active: Vec<u32>,
    /// Dropped receptions recorded by this cell's listeners.
    drops: Vec<DropRec>,
    /// Net change this round to the global not-yet-done count.
    undone_delta: i64,
}

/// Raw views of the per-node struct-of-arrays tables, so the act and
/// resolve passes can be shared verbatim between the sequential and the
/// scoped-thread paths. Within a round, each node id is touched by
/// exactly one cell and each cell by exactly one worker, so all writes
/// through these pointers are disjoint; cross-cell *reads* (`tx_on`,
/// `tx_msg`) only target values frozen by the previous pass barrier.
struct Tables<P: NodeProgram> {
    programs: *mut Option<P>,
    meters: *mut EnergyMeter,
    wake: *mut Round,
    last_acct: *mut Round,
    done_flag: *mut bool,
    tx_on: *mut u8,
    listen_on: *mut u8,
    tx_msg: *mut Option<P::Msg>,
    rx_count: *mut u32,
    rx_from: *mut u32,
}

impl<P: NodeProgram> Clone for Tables<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: NodeProgram> Copy for Tables<P> {}

// Safety: see `Tables` — per-node writes are partitioned by cell, and
// the barrier protocol orders cross-cell reads after the writes they
// observe. `P: Send` lets `&mut P` callbacks run on a worker thread;
// `P::Msg: Sync + Send` covers cross-thread `&Msg` reads and the final
// drop of buffered messages on the main thread.
unsafe impl<P: NodeProgram + Send> Send for Tables<P> where P::Msg: Send + Sync {}
unsafe impl<P: NodeProgram + Send> Sync for Tables<P> where P::Msg: Send + Sync {}

/// Pointer to the per-cell scratch array, shared across workers that
/// index disjoint cells.
struct CellsPtr(*mut CellScratch);
unsafe impl Send for CellsPtr {}
unsafe impl Sync for CellsPtr {}

/// Shared read-only inputs of the act/resolve passes.
struct PassEnv<'a> {
    csr_off: &'a [u32],
    csr_adj: &'a [NodeId],
    failures: &'a FailurePlan,
    failures_empty: bool,
    loss: LossModel,
    channels: u8,
    /// Sleep-skip hints honoured (no failure plan installed).
    hints: bool,
    trace_enabled: bool,
}

/// Act pass over one cell: clear the previous round's marks, consult
/// every due node, and fill the transmit/listen tables.
///
/// Safety: `sc` must be the exclusive scratch of this cell and `cell`
/// must contain only ids owned by it (guaranteed by `ShardPlan`).
unsafe fn pass_act<P: NodeProgram>(
    env: &PassEnv<'_>,
    t: Tables<P>,
    cell: &[u32],
    sc: &mut CellScratch,
    round: Round,
) {
    for &iu in &sc.active {
        let i = iu as usize;
        *t.tx_on.add(i) = NO_TX;
        *t.listen_on.add(i) = NO_TX;
    }
    sc.active.clear();
    sc.drops.clear();
    sc.undone_delta = 0;
    for &iu in cell {
        let i = iu as usize;
        if *t.wake.add(i) > round {
            continue;
        }
        let id = NodeId(iu);
        if !env.failures_empty && env.failures.node_dead(id, round) {
            continue;
        }
        if env.hints {
            let last = *t.last_acct.add(i);
            if round > last + 1 {
                // Rounds skipped on a wake hint are, by contract, sleep.
                (*t.meters.add(i)).sleep_rounds += round - last - 1;
            }
        }
        *t.last_acct.add(i) = round;
        let ctx = NodeCtx {
            id,
            round,
            channels: env.channels,
        };
        match (*t.programs.add(i)).as_mut().unwrap().act(&ctx) {
            Action::Transmit { channel, msg } => {
                assert!(
                    channel < env.channels,
                    "node {id} used channel {channel} but only {} exist",
                    env.channels
                );
                *t.tx_on.add(i) = channel;
                *t.tx_msg.add(i) = Some(msg);
            }
            Action::Listen { channel } => {
                assert!(
                    channel < env.channels,
                    "node {id} used channel {channel} but only {} exist",
                    env.channels
                );
                *t.listen_on.add(i) = channel;
            }
            Action::Sleep => {}
        }
        sc.active.push(iu);
    }
}

/// Resolve pass over one cell: meter energy, scan listeners' CSR rows
/// against the global transmit table, apply receptions, and refresh
/// each consulted node's wake hint and done flag.
///
/// Safety: as for [`pass_act`]; additionally all `pass_act` writes must
/// be complete (barrier in the parallel path).
unsafe fn pass_resolve<P: NodeProgram>(
    env: &PassEnv<'_>,
    t: Tables<P>,
    sc: &mut CellScratch,
    round: Round,
) {
    let CellScratch {
        active,
        drops,
        undone_delta,
    } = sc;
    for &iu in active.iter() {
        let i = iu as usize;
        let id = NodeId(iu);
        if *t.tx_on.add(i) != NO_TX {
            (*t.meters.add(i)).record_tx(round);
        } else {
            let ch = *t.listen_on.add(i);
            if ch == NO_TX {
                (*t.meters.add(i)).record_sleep();
            } else {
                (*t.meters.add(i)).record_listen(round);
                // Count live neighbours transmitting on our channel over a
                // live link. The flat `tx_on` byte table filters out silent
                // neighbours before any map probe or message access.
                let row = env.csr_off[i] as usize..env.csr_off[i + 1] as usize;
                let mut tx_count = 0u32;
                let mut tx_from = 0u32;
                for (pos, &v) in env.csr_adj[row].iter().enumerate() {
                    if *t.tx_on.add(v.index()) != ch {
                        continue;
                    }
                    if !env.failures_empty && env.failures.link_dead(id, v, round) {
                        continue;
                    }
                    if env.loss.dropped(v, id, round) {
                        if env.trace_enabled {
                            drops.push(DropRec {
                                to: iu,
                                pos: pos as u32,
                                from: v.0,
                            });
                        }
                        continue;
                    }
                    tx_count += 1;
                    tx_from = v.0;
                }
                *t.rx_count.add(i) = tx_count;
                *t.rx_from.add(i) = tx_from;
                if tx_count == 1 {
                    // Hand the message over by reference straight out of
                    // the sender's slot — no per-delivery clone. The slot
                    // was filled this round (the sender is on the air) and
                    // no act pass runs concurrently with resolve.
                    let msg = (*t.tx_msg.add(tx_from as usize)).as_ref().unwrap();
                    let ctx = NodeCtx {
                        id,
                        round,
                        channels: env.channels,
                    };
                    (*t.programs.add(i))
                        .as_mut()
                        .unwrap()
                        .on_receive(&ctx, NodeId(tx_from), msg);
                }
            }
        }
        let p = (*t.programs.add(i)).as_ref().unwrap();
        *t.wake.add(i) = if env.hints {
            match p.next_wake(round) {
                Some(w) => w.max(round + 1),
                None => round + 1,
            }
        } else {
            round + 1
        };
        let now_done = p.done();
        let flag = &mut *t.done_flag.add(i);
        if now_done != *flag {
            *undone_delta += if now_done { -1 } else { 1 };
            *flag = now_done;
        }
    }
}

/// Merge pass (main thread): serialise the per-cell buffers into the
/// trace in canonical global id order. Reproduces byte-for-byte the
/// event order of a plain sequential scan over all nodes: per active
/// node either its `Transmit`, or — for listeners — its `LinkDrop`s in
/// adjacency order followed by its `Deliver`/`Collision`.
#[allow(clippy::too_many_arguments)]
unsafe fn emit_round<P: NodeProgram>(
    t: Tables<P>,
    cells: &CellsPtr,
    n_cells: usize,
    trace: &mut Trace,
    order: &mut Vec<u32>,
    drop_buf: &mut Vec<DropRec>,
    round: Round,
) {
    order.clear();
    drop_buf.clear();
    for c in 0..n_cells {
        let sc = &*cells.0.add(c);
        order.extend_from_slice(&sc.active);
        drop_buf.extend_from_slice(&sc.drops);
    }
    order.sort_unstable();
    drop_buf.sort_unstable_by_key(|d| (d.to, d.pos));
    let mut next_drop = 0usize;
    for &iu in order.iter() {
        let i = iu as usize;
        let id = NodeId(iu);
        let txc = *t.tx_on.add(i);
        if txc != NO_TX {
            trace.push(TraceEvent::Transmit {
                round,
                node: id,
                channel: txc,
            });
            continue;
        }
        let ch = *t.listen_on.add(i);
        if ch == NO_TX {
            continue;
        }
        while next_drop < drop_buf.len() && drop_buf[next_drop].to == iu {
            trace.push(TraceEvent::LinkDrop {
                round,
                from: NodeId(drop_buf[next_drop].from),
                to: id,
                channel: ch,
            });
            next_drop += 1;
        }
        match *t.rx_count.add(i) {
            0 => {}
            1 => trace.push(TraceEvent::Deliver {
                round,
                from: NodeId(*t.rx_from.add(i)),
                to: id,
                channel: ch,
            }),
            n => trace.push(TraceEvent::Collision {
                round,
                node: id,
                channel: ch,
                transmitters: n,
            }),
        }
    }
}

/// Borrow the shared pass inputs field-by-field (not via `&self`, so
/// the trace and scratch fields stay independently borrowable).
macro_rules! pass_env {
    ($e:expr) => {
        PassEnv {
            csr_off: &$e.csr_off,
            csr_adj: &$e.csr_adj,
            failures: &$e.failures,
            failures_empty: $e.failures_empty,
            loss: $e.loss,
            channels: $e.config.channels,
            hints: $e.failures_empty,
            trace_enabled: $e.trace.is_enabled(),
        }
    };
}

/// Build the raw table views out of the engine's field vectors.
macro_rules! tables {
    ($e:expr) => {
        Tables {
            programs: $e.programs.as_mut_ptr(),
            meters: $e.meters.as_mut_ptr(),
            wake: $e.wake.as_mut_ptr(),
            last_acct: $e.last_acct.as_mut_ptr(),
            done_flag: $e.done_flag.as_mut_ptr(),
            tx_on: $e.tx_on.as_mut_ptr(),
            listen_on: $e.listen_on.as_mut_ptr(),
            tx_msg: $e.tx_msg.as_mut_ptr(),
            rx_count: $e.rx_count.as_mut_ptr(),
            rx_from: $e.rx_from.as_mut_ptr(),
        }
    };
}

/// Lock-step simulator binding one [`NodeProgram`] to each live graph node.
pub struct Engine<'g, P: NodeProgram> {
    graph: &'g Graph,
    config: EngineConfig,
    programs: Vec<Option<P>>,
    meters: Vec<EnergyMeter>,
    failures: FailurePlan,
    /// Cached `failures.is_empty()` — lets the per-node liveness and link
    /// checks skip HashMap probes entirely on the (common) clean runs.
    failures_empty: bool,
    /// Failure-affected nodes in id order, precomputed once per plan so the
    /// round loop never re-collects/re-sorts HashMap keys.
    affected_sorted: Vec<NodeId>,
    loss: LossModel,
    trace: Trace,
    round: Round,
    /// Flattened CSR adjacency (`csr_off[i]..csr_off[i+1]` indexes
    /// `csr_adj`): one contiguous scan per listener instead of a
    /// pointer-chase into per-node vectors.
    csr_off: Vec<u32>,
    csr_adj: Vec<NodeId>,
    /// Installed cell partition (single implicit cell until set).
    plan: Option<ShardPlan>,
    /// Worker threads for [`Engine::run_parallel`].
    threads: usize,
    /// Scratch: this round's transmit channel per node id ([`NO_TX`] =
    /// silent).
    tx_on: Vec<u8>,
    /// Scratch: this round's listen channel per node id ([`NO_TX`] = not
    /// listening).
    listen_on: Vec<u8>,
    /// Scratch: in-flight message per *transmitting* node id. Stale slots
    /// of earlier rounds are never read (the `tx_on` filter runs first).
    tx_msg: Vec<Option<P::Msg>>,
    /// Scratch: resolved transmitter count / sole sender per listener.
    rx_count: Vec<u32>,
    rx_from: Vec<u32>,
    /// Next round each node must be consulted in ([`NEVER`] = no program).
    wake: Vec<Round>,
    /// Last round accounted in the node's energy meter (sleep batching).
    last_acct: Vec<Round>,
    /// Cached `done()` per node, maintained incrementally.
    done_flag: Vec<bool>,
    /// Number of program-bearing nodes with `done_flag == false`.
    undone: usize,
    /// Per-cell scratch, one entry per plan cell.
    cells_scratch: Vec<CellScratch>,
    /// Merge-pass scratch (id order / sorted drops).
    order: Vec<u32>,
    drop_buf: Vec<DropRec>,
}

impl<'g, P: NodeProgram> Engine<'g, P> {
    /// Create an engine over `graph`, instantiating a program for every
    /// live node via `make`.
    pub fn new(graph: &'g Graph, config: EngineConfig, mut make: impl FnMut(NodeId) -> P) -> Self {
        assert!(config.channels >= 1, "at least one radio channel required");
        let cap = graph.capacity();
        let mut programs: Vec<Option<P>> = Vec::with_capacity(cap);
        let mut wake = vec![NEVER; cap];
        let mut done_flag = vec![false; cap];
        let mut undone = 0usize;
        for i in 0..cap {
            let id = NodeId(i as u32);
            let p = graph.is_live(id).then(|| make(id));
            if let Some(p) = &p {
                wake[i] = 1;
                done_flag[i] = p.done();
                if !done_flag[i] {
                    undone += 1;
                }
            }
            programs.push(p);
        }
        let mut csr_off = Vec::with_capacity(cap + 1);
        let mut csr_adj = Vec::with_capacity(graph.edge_count() * 2);
        for i in 0..cap {
            csr_off.push(csr_adj.len() as u32);
            let id = NodeId(i as u32);
            if graph.is_live(id) {
                csr_adj.extend_from_slice(graph.neighbors(id));
            }
        }
        csr_off.push(csr_adj.len() as u32);
        Self {
            graph,
            config,
            programs,
            meters: vec![EnergyMeter::default(); cap],
            failures: FailurePlan::new(),
            failures_empty: true,
            affected_sorted: Vec::new(),
            loss: LossModel::none(),
            trace: if config.record_trace {
                // Typical runs log a handful of events per node per phase;
                // reserving up-front avoids growth reallocations mid-run.
                Trace::enabled_with_capacity(cap * 4)
            } else {
                Trace::disabled()
            },
            round: 0,
            csr_off,
            csr_adj,
            plan: None,
            threads: 1,
            tx_on: vec![NO_TX; cap],
            listen_on: vec![NO_TX; cap],
            tx_msg: (0..cap).map(|_| None).collect(),
            rx_count: vec![0; cap],
            rx_from: vec![0; cap],
            wake,
            last_acct: vec![0; cap],
            done_flag,
            undone,
            cells_scratch: Vec::new(),
            order: Vec::new(),
            drop_buf: Vec::new(),
        }
    }

    /// Install a failure schedule (replaces any previous one).
    pub fn set_failures(&mut self, plan: FailurePlan) {
        self.failures_empty = plan.is_empty();
        self.affected_sorted = plan.affected_nodes().collect();
        // HashMap iteration order is arbitrary; the trace must not be.
        self.affected_sorted.sort_unstable();
        self.failures = plan;
    }

    /// Install a lossy-channel model (replaces any previous one).
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss = loss;
    }

    /// Install a cell partition and a worker-thread count for
    /// [`Engine::run_parallel`]. The plan must cover exactly the
    /// program-bearing node ids. The partition and thread count are
    /// invisible in every output — they only change *where* each node's
    /// round is resolved.
    pub fn set_shards(&mut self, plan: ShardPlan, threads: usize) {
        let cap = self.programs.len();
        let mut covered = vec![false; cap];
        for cell in plan.cells() {
            for &iu in cell {
                let i = iu as usize;
                assert!(
                    i < cap && self.programs[i].is_some(),
                    "shard plan names node {iu} which has no program"
                );
                covered[i] = true;
            }
        }
        for (i, p) in self.programs.iter().enumerate() {
            assert!(p.is_none() || covered[i], "shard plan misses live node {i}");
        }
        self.plan = Some(plan);
        self.threads = threads.max(1);
        self.cells_scratch.clear();
    }

    /// The connectivity graph the engine runs against.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Rounds executed so far.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The (possibly disabled) event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Energy meter of one node.
    pub fn meter(&self, id: NodeId) -> &EnergyMeter {
        &self.meters[id.index()]
    }

    /// Energy report over all nodes that have a program.
    pub fn energy_report(&self) -> EnergyReport {
        EnergyReport::from_meters(
            self.programs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_some())
                .map(|(i, _)| &self.meters[i]),
        )
    }

    /// Immutable view of a node's program (None for dead-id slots).
    pub fn program(&self, id: NodeId) -> Option<&P> {
        self.programs.get(id.index()).and_then(|p| p.as_ref())
    }

    /// Consume the engine, returning every node's final program state.
    pub fn into_programs(self) -> Vec<Option<P>> {
        self.programs
    }

    /// Consume the engine, returning the trace and every node's final
    /// program state — for callers that need both without cloning the
    /// (possibly large) event log.
    pub fn into_parts(self) -> (Trace, Vec<Option<P>>) {
        (self.trace, self.programs)
    }

    /// Materialise the default single-cell plan and size the per-cell
    /// scratch. Idempotent.
    fn ensure_plan(&mut self) {
        if self.plan.is_none() {
            let ids: Vec<NodeId> = (0..self.programs.len())
                .filter(|&i| self.programs[i].is_some())
                .map(|i| NodeId(i as u32))
                .collect();
            self.plan = Some(ShardPlan::single(ids));
        }
        let n_cells = self.plan.as_ref().unwrap().cell_count();
        if self.cells_scratch.len() != n_cells {
            self.cells_scratch = (0..n_cells).map(|_| CellScratch::default()).collect();
        }
    }

    /// Death/revival notifications (trace only — the network can't
    /// observe them). `affected_sorted` is precomputed in id order by
    /// `set_failures`, so no per-round collection or sort happens here.
    fn trace_failures(&mut self, round: Round) {
        if self.trace.is_enabled() && !self.affected_sorted.is_empty() {
            for &node in &self.affected_sorted {
                if self.failures.dies_at(node, round) {
                    self.trace.push(TraceEvent::NodeDeath { round, node });
                } else if self.failures.revives_at(node, round) {
                    self.trace.push(TraceEvent::NodeRevive { round, node });
                }
            }
        }
    }

    /// Aggregate the per-cell done deltas (or, with failures installed,
    /// re-scan exactly like the pre-sharding engine did: nodes dead in
    /// `round + 1` don't block completion while they're dark).
    fn round_done(&mut self, round: Round) -> bool {
        if self.failures_empty {
            let mut undone = self.undone as i64;
            for sc in &self.cells_scratch {
                undone += sc.undone_delta;
            }
            self.undone = undone as usize;
            self.undone == 0
        } else {
            self.programs
                .iter()
                .enumerate()
                .filter(|(i, p)| {
                    p.is_some() && !self.failures.node_dead(NodeId(*i as u32), round + 1)
                })
                .all(|(_, p)| p.as_ref().unwrap().done())
        }
    }

    /// Credit every remaining hinted-away round as sleep, so meters read
    /// identically to a run that consulted each node every round.
    fn flush_sleep(&mut self) {
        if !self.failures_empty {
            return;
        }
        let end = self.round;
        for (i, p) in self.programs.iter().enumerate() {
            if p.is_some() && end > self.last_acct[i] {
                self.meters[i].sleep_rounds += end - self.last_acct[i];
                self.last_acct[i] = end;
            }
        }
    }

    /// Execute a single round sequentially. Returns `true` if every live
    /// node is done (checked *after* the round).
    ///
    /// Note for direct steppers: batched sleep credits are flushed by
    /// [`Engine::run`]/[`Engine::run_parallel`]; after raw `step()` calls
    /// the sleep meters of programs with wake hints lag until the next
    /// consultation.
    pub fn step(&mut self) -> bool {
        self.ensure_plan();
        self.round += 1;
        let round = self.round;
        self.trace_failures(round);
        let t = tables!(self);
        let env = pass_env!(self);
        let plan = self.plan.as_ref().unwrap();
        let cells = plan.cells();
        // Safety: sequential — one thread touches every cell, and the
        // raw table views don't alias the plan/scratch/trace fields.
        unsafe {
            for (c, cell) in cells.iter().enumerate() {
                pass_act(
                    &env,
                    t,
                    cell,
                    &mut *self.cells_scratch.as_mut_ptr().add(c),
                    round,
                );
            }
            for c in 0..cells.len() {
                pass_resolve(&env, t, &mut *self.cells_scratch.as_mut_ptr().add(c), round);
            }
        }
        if self.trace.is_enabled() {
            let cells_ptr = CellsPtr(self.cells_scratch.as_mut_ptr());
            let n_cells = self.cells_scratch.len();
            unsafe {
                emit_round(
                    t,
                    &cells_ptr,
                    n_cells,
                    &mut self.trace,
                    &mut self.order,
                    &mut self.drop_buf,
                    round,
                );
            }
        }
        self.round_done(round)
    }

    /// Run until all live nodes are done or the round limit is hit.
    pub fn run(&mut self) -> RunOutcome {
        let mut stop = StopReason::RoundLimit;
        while self.round < self.config.max_rounds {
            if self.step() {
                stop = StopReason::AllDone;
                break;
            }
        }
        self.flush_sleep();
        RunOutcome {
            rounds: self.round,
            stop,
        }
    }

    /// Run with the installed shard plan resolved by `threads` scoped
    /// workers. Produces byte-identical traces, meters and outcomes to
    /// [`Engine::run`] — the cells are resolved concurrently but merged
    /// in the same canonical order.
    pub fn run_parallel(&mut self) -> RunOutcome
    where
        P: Send,
        P::Msg: Send + Sync,
    {
        self.ensure_plan();
        let threads = self.threads.min(self.cells_scratch.len().max(1));
        if threads <= 1 {
            return self.run();
        }
        let max_rounds = self.config.max_rounds;
        let cap = self.programs.len();
        let t = tables!(self);
        let cells_ptr = CellsPtr(self.cells_scratch.as_mut_ptr());
        let n_cells = self.cells_scratch.len();
        let env = pass_env!(self);
        let plan = self.plan.as_ref().unwrap();
        let trace = &mut self.trace;
        let order = &mut self.order;
        let drop_buf = &mut self.drop_buf;
        let affected = &self.affected_sorted;
        let round_now = AtomicU64::new(self.round);
        let stop_flag = AtomicBool::new(false);
        let gate_a = Barrier::new(threads + 1);
        let gate_b = Barrier::new(threads + 1);
        let gate_c = Barrier::new(threads + 1);
        let mut round = self.round;
        let mut undone = self.undone as i64;
        let mut stop = StopReason::RoundLimit;
        std::thread::scope(|s| {
            for w in 0..threads {
                let env = &env;
                let plan = &*plan;
                let cells_ptr = &cells_ptr;
                let round_now = &round_now;
                let stop_flag = &stop_flag;
                let (gate_a, gate_b, gate_c) = (&gate_a, &gate_b, &gate_c);
                s.spawn(move || loop {
                    gate_a.wait();
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let round = round_now.load(Ordering::Acquire);
                    // Static cell → worker map: any map works (outputs
                    // are partition-invariant); a fixed one keeps each
                    // cell's scratch on one thread for the whole run.
                    unsafe {
                        for c in (w..plan.cells().len()).step_by(threads) {
                            let sc = &mut *cells_ptr.0.add(c);
                            pass_act(env, t, &plan.cells()[c], sc, round);
                        }
                    }
                    gate_b.wait();
                    unsafe {
                        for c in (w..plan.cells().len()).step_by(threads) {
                            let sc = &mut *cells_ptr.0.add(c);
                            pass_resolve(env, t, sc, round);
                        }
                    }
                    gate_c.wait();
                });
            }
            while round < max_rounds {
                round += 1;
                // Death/revival prologue (main thread owns the trace).
                if trace.is_enabled() && !affected.is_empty() {
                    for &node in affected.iter() {
                        if env.failures.dies_at(node, round) {
                            trace.push(TraceEvent::NodeDeath { round, node });
                        } else if env.failures.revives_at(node, round) {
                            trace.push(TraceEvent::NodeRevive { round, node });
                        }
                    }
                }
                round_now.store(round, Ordering::Release);
                gate_a.wait();
                gate_b.wait();
                gate_c.wait();
                if trace.is_enabled() {
                    unsafe {
                        emit_round(t, &cells_ptr, n_cells, trace, order, drop_buf, round);
                    }
                }
                let done = if env.failures_empty {
                    unsafe {
                        for c in 0..n_cells {
                            undone += (*cells_ptr.0.add(c)).undone_delta;
                        }
                    }
                    undone == 0
                } else {
                    // Same dead-node-exempt scan as the sequential path.
                    unsafe {
                        (0..cap).all(|i| match (*t.programs.add(i)).as_ref() {
                            None => true,
                            Some(p) => {
                                p.done() || env.failures.node_dead(NodeId(i as u32), round + 1)
                            }
                        })
                    }
                };
                if done {
                    stop = StopReason::AllDone;
                    break;
                }
            }
            stop_flag.store(true, Ordering::Release);
            gate_a.wait();
        });
        self.round = round;
        self.undone = undone.max(0) as usize;
        self.flush_sleep();
        RunOutcome {
            rounds: round,
            stop,
        }
    }
}
