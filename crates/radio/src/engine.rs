//! The lock-step execution engine.

use crate::action::Action;
use crate::energy::{EnergyMeter, EnergyReport};
use crate::failure::FailurePlan;
use crate::loss::LossModel;
use crate::trace::{Trace, TraceEvent};
use crate::Round;
use dsnet_graph::{Graph, NodeId};

/// Read-only per-callback context handed to node programs.
#[derive(Debug, Clone, Copy)]
pub struct NodeCtx {
    /// The node this callback concerns.
    pub id: NodeId,
    /// Current round, 1-based.
    pub round: Round,
    /// Number of available radio channels `k`.
    pub channels: u8,
}

/// A per-node protocol state machine.
///
/// Programs only see their own callbacks — all coordination must go through
/// transmitted messages, exactly as on real hardware. Collisions are
/// silent: a round in which two neighbours transmit simultaneously is
/// indistinguishable from a round in which nobody did.
pub trait NodeProgram {
    /// Message type carried over the air.
    type Msg: Clone;

    /// Decide this round's action. Called once per round while the node is
    /// alive.
    fn act(&mut self, ctx: &NodeCtx) -> Action<Self::Msg>;

    /// Called when the node was listening and exactly one neighbour
    /// transmitted on its channel. `from` models the sender id carried in
    /// every packet header.
    fn on_receive(&mut self, ctx: &NodeCtx, from: NodeId, msg: &Self::Msg);

    /// Whether this node considers the protocol locally complete. The run
    /// ends early once every live node is done.
    fn done(&self) -> bool {
        false
    }
}

/// Engine settings.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of radio channels `k ≥ 1`.
    pub channels: u8,
    /// Hard round limit (the run fails over to [`StopReason::RoundLimit`]).
    pub max_rounds: Round,
    /// Record a full event trace.
    ///
    /// Defaults to `true` (matching `RunConfig` in `dsnet-protocols`):
    /// collision counts are only measurable from the trace, and a silent
    /// zero from an unrecorded run is worse than the memory cost of
    /// recording. Large sweeps that don't need collision data should
    /// disable it explicitly.
    pub record_trace: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            channels: 1,
            max_rounds: 1_000_000,
            record_trace: true,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every live node reported `done()`.
    AllDone,
    /// `max_rounds` elapsed first.
    RoundLimit,
}

/// Result of [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Rounds actually executed.
    pub rounds: Round,
    /// Why the run ended.
    pub stop: StopReason,
}

/// Sentinel in the per-round transmit-channel table: "not transmitting".
/// Valid channels are `< config.channels ≤ 255`, so 255 never collides.
const NO_TX: u8 = u8::MAX;

/// Lock-step simulator binding one [`NodeProgram`] to each live graph node.
pub struct Engine<'g, P: NodeProgram> {
    graph: &'g Graph,
    config: EngineConfig,
    programs: Vec<Option<P>>,
    meters: Vec<EnergyMeter>,
    failures: FailurePlan,
    /// Cached `failures.is_empty()` — lets the per-node liveness and link
    /// checks skip HashMap probes entirely on the (common) clean runs.
    failures_empty: bool,
    /// Failure-affected nodes in id order, precomputed once per plan so the
    /// round loop never re-collects/re-sorts HashMap keys.
    affected_sorted: Vec<NodeId>,
    loss: LossModel,
    trace: Trace,
    round: Round,
    /// Scratch: this round's action per node id (None = dead or absent).
    actions: Vec<Option<Action<P::Msg>>>,
    /// Scratch: this round's transmit channel per node id ([`NO_TX`] =
    /// silent). A flat byte table makes the phase-2 receiver scan a cache
    /// line read instead of an enum match over potentially large messages.
    tx_on: Vec<u8>,
}

impl<'g, P: NodeProgram> Engine<'g, P> {
    /// Create an engine over `graph`, instantiating a program for every
    /// live node via `make`.
    pub fn new(graph: &'g Graph, config: EngineConfig, mut make: impl FnMut(NodeId) -> P) -> Self {
        assert!(config.channels >= 1, "at least one radio channel required");
        let cap = graph.capacity();
        let mut programs: Vec<Option<P>> = Vec::with_capacity(cap);
        for i in 0..cap {
            let id = NodeId(i as u32);
            programs.push(graph.is_live(id).then(|| make(id)));
        }
        Self {
            graph,
            config,
            programs,
            meters: vec![EnergyMeter::default(); cap],
            failures: FailurePlan::new(),
            failures_empty: true,
            affected_sorted: Vec::new(),
            loss: LossModel::none(),
            trace: if config.record_trace {
                // Typical runs log a handful of events per node per phase;
                // reserving up-front avoids growth reallocations mid-run.
                Trace::enabled_with_capacity(cap * 4)
            } else {
                Trace::disabled()
            },
            round: 0,
            actions: (0..cap).map(|_| None).collect(),
            tx_on: vec![NO_TX; cap],
        }
    }

    /// Install a failure schedule (replaces any previous one).
    pub fn set_failures(&mut self, plan: FailurePlan) {
        self.failures_empty = plan.is_empty();
        self.affected_sorted = plan.affected_nodes().collect();
        // HashMap iteration order is arbitrary; the trace must not be.
        self.affected_sorted.sort_unstable();
        self.failures = plan;
    }

    /// Install a lossy-channel model (replaces any previous one).
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss = loss;
    }

    /// Rounds executed so far.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The (possibly disabled) event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Energy meter of one node.
    pub fn meter(&self, id: NodeId) -> &EnergyMeter {
        &self.meters[id.index()]
    }

    /// Energy report over all nodes that have a program.
    pub fn energy_report(&self) -> EnergyReport {
        EnergyReport::from_meters(
            self.programs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_some())
                .map(|(i, _)| &self.meters[i]),
        )
    }

    /// Immutable view of a node's program (None for dead-id slots).
    pub fn program(&self, id: NodeId) -> Option<&P> {
        self.programs.get(id.index()).and_then(|p| p.as_ref())
    }

    /// Consume the engine, returning every node's final program state.
    pub fn into_programs(self) -> Vec<Option<P>> {
        self.programs
    }

    /// Consume the engine, returning the trace and every node's final
    /// program state — for callers that need both without cloning the
    /// (possibly large) event log.
    pub fn into_parts(self) -> (Trace, Vec<Option<P>>) {
        (self.trace, self.programs)
    }

    fn alive(&self, id: NodeId, round: Round) -> bool {
        self.programs[id.index()].is_some()
            && self.graph.is_live(id)
            && (self.failures_empty || !self.failures.node_dead(id, round))
    }

    /// Execute a single round. Returns `true` if every live node is done
    /// (checked *after* the round).
    pub fn step(&mut self) -> bool {
        self.round += 1;
        let round = self.round;
        let channels = self.config.channels;

        // Death/revival notifications (trace only — the network can't
        // observe them). `affected_sorted` is precomputed in id order by
        // `set_failures`, so no per-round collection or sort happens here.
        if self.trace.is_enabled() && !self.affected_sorted.is_empty() {
            for &node in &self.affected_sorted {
                if self.failures.dies_at(node, round) {
                    self.trace.push(TraceEvent::NodeDeath { round, node });
                } else if self.failures.revives_at(node, round) {
                    self.trace.push(TraceEvent::NodeRevive { round, node });
                }
            }
        }

        // Phase 1: collect actions and fill the transmit-channel table.
        for i in 0..self.programs.len() {
            let id = NodeId(i as u32);
            self.actions[i] = None;
            self.tx_on[i] = NO_TX;
            if !self.alive(id, round) {
                continue;
            }
            let ctx = NodeCtx {
                id,
                round,
                channels,
            };
            let action = self.programs[i].as_mut().unwrap().act(&ctx);
            match &action {
                Action::Transmit { channel, .. } => {
                    assert!(
                        *channel < channels,
                        "node {id} used channel {channel} but only {channels} exist"
                    );
                    self.tx_on[i] = *channel;
                }
                Action::Listen { channel } => {
                    assert!(
                        *channel < channels,
                        "node {id} used channel {channel} but only {channels} exist"
                    );
                }
                Action::Sleep => {}
            }
            self.actions[i] = Some(action);
        }

        // Phase 2: resolve receptions and meter energy. Fields are split
        // into disjoint borrows so a delivered message can be handed to the
        // receiver by reference straight out of the sender's action slot —
        // no per-delivery clone.
        let programs = &mut self.programs;
        let actions = &self.actions;
        let meters = &mut self.meters;
        let trace = &mut self.trace;
        let tx_on = &self.tx_on;
        let graph = self.graph;
        let failures = &self.failures;
        let failures_empty = self.failures_empty;
        let loss = &self.loss;
        for i in 0..programs.len() {
            let id = NodeId(i as u32);
            let Some(action) = &actions[i] else {
                continue;
            };
            match action {
                Action::Transmit { channel, .. } => {
                    meters[i].record_tx(round);
                    trace.push(TraceEvent::Transmit {
                        round,
                        node: id,
                        channel: *channel,
                    });
                }
                Action::Sleep => meters[i].record_sleep(),
                Action::Listen { channel } => {
                    meters[i].record_listen(round);
                    let ch = *channel;
                    // Count live neighbours transmitting on our channel over
                    // a live link. The flat `tx_on` byte table filters out
                    // silent neighbours before any enum match or map probe.
                    let mut tx_from: Option<NodeId> = None;
                    let mut tx_count = 0u32;
                    for &v in graph.neighbors(id) {
                        if tx_on[v.index()] != ch {
                            continue;
                        }
                        if !failures_empty && failures.link_dead(id, v, round) {
                            continue;
                        }
                        if loss.dropped(v, id, round) {
                            trace.push(TraceEvent::LinkDrop {
                                round,
                                from: v,
                                to: id,
                                channel: ch,
                            });
                            continue;
                        }
                        tx_count += 1;
                        tx_from = Some(v);
                    }
                    match tx_count {
                        1 => {
                            let from = tx_from.unwrap();
                            let msg = match &actions[from.index()] {
                                Some(Action::Transmit { msg, .. }) => msg,
                                _ => unreachable!(),
                            };
                            trace.push(TraceEvent::Deliver {
                                round,
                                from,
                                to: id,
                                channel: ch,
                            });
                            let ctx = NodeCtx {
                                id,
                                round,
                                channels,
                            };
                            programs[i].as_mut().unwrap().on_receive(&ctx, from, msg);
                        }
                        0 => {}
                        n => {
                            trace.push(TraceEvent::Collision {
                                round,
                                node: id,
                                channel: ch,
                                transmitters: n,
                            });
                        }
                    }
                }
            }
        }

        // Done check over nodes still alive this round.
        if self.failures_empty {
            self.programs.iter().flatten().all(|p| p.done())
        } else {
            self.programs
                .iter()
                .enumerate()
                .filter(|(i, p)| {
                    p.is_some() && !self.failures.node_dead(NodeId(*i as u32), round + 1)
                })
                .all(|(_, p)| p.as_ref().unwrap().done())
        }
    }

    /// Run until all live nodes are done or the round limit is hit.
    pub fn run(&mut self) -> RunOutcome {
        while self.round < self.config.max_rounds {
            if self.step() {
                return RunOutcome {
                    rounds: self.round,
                    stop: StopReason::AllDone,
                };
            }
        }
        RunOutcome {
            rounds: self.round,
            stop: StopReason::RoundLimit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple flooding program used to exercise the engine: the source
    /// transmits once in round 1; every node that has the message transmits
    /// once in the round after it received it. With collisions this may
    /// fail to cover the graph — that is the point of the model.
    struct Flood {
        has_msg: bool,
        sent: bool,
        tx_round: Option<Round>,
        received_round: Option<Round>,
    }

    impl Flood {
        fn source() -> Self {
            Flood {
                has_msg: true,
                sent: false,
                tx_round: Some(1),
                received_round: Some(0),
            }
        }
        fn idle() -> Self {
            Flood {
                has_msg: false,
                sent: false,
                tx_round: None,
                received_round: None,
            }
        }
    }

    impl NodeProgram for Flood {
        type Msg = u32;
        fn act(&mut self, ctx: &NodeCtx) -> Action<u32> {
            if self.has_msg && !self.sent && self.tx_round == Some(ctx.round) {
                self.sent = true;
                return Action::transmit(42);
            }
            if self.has_msg && self.sent {
                Action::Sleep
            } else {
                Action::listen()
            }
        }
        fn on_receive(&mut self, ctx: &NodeCtx, _from: NodeId, msg: &u32) {
            assert_eq!(*msg, 42);
            if !self.has_msg {
                self.has_msg = true;
                self.received_round = Some(ctx.round);
                self.tx_round = Some(ctx.round + 1);
            }
        }
        fn done(&self) -> bool {
            self.has_msg && self.sent
        }
    }

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32));
        }
        g
    }

    fn engine_on_path(n: usize) -> Engine<'static, Flood> {
        let g = Box::leak(Box::new(path(n)));
        Engine::new(
            g,
            EngineConfig {
                record_trace: true,
                ..Default::default()
            },
            |id| {
                if id == NodeId(0) {
                    Flood::source()
                } else {
                    Flood::idle()
                }
            },
        )
    }

    #[test]
    fn flood_travels_one_hop_per_round_on_a_path() {
        let mut e = engine_on_path(5);
        let out = e.run();
        assert_eq!(out.stop, StopReason::AllDone);
        // Node i receives in round i, transmits in round i+1; last node (4)
        // receives in round 4 and transmits in round 5.
        assert_eq!(out.rounds, 5);
        for i in 1..5u32 {
            assert_eq!(e.program(NodeId(i)).unwrap().received_round, Some(i as u64));
        }
        assert_eq!(e.trace().collision_count(), 0);
    }

    #[test]
    fn collision_destroys_reception() {
        // Triangle-free star: 0 and 2 both adjacent to 1 only.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(1));
        // Both endpoints are sources transmitting in round 1 → node 1 hears
        // nothing and never gets the message.
        struct TwoSources;
        let mut e = Engine::new(
            &g,
            EngineConfig {
                max_rounds: 3,
                record_trace: true,
                ..Default::default()
            },
            |id| {
                let _ = TwoSources;
                if id == NodeId(1) {
                    Flood::idle()
                } else {
                    Flood::source()
                }
            },
        );
        let out = e.run();
        assert_eq!(out.stop, StopReason::RoundLimit);
        assert!(!e.program(NodeId(1)).unwrap().has_msg);
        assert_eq!(e.trace().collision_count(), 1);
        assert_eq!(e.trace().delivery_count(), 0);
    }

    #[test]
    fn channels_isolate_transmissions() {
        // Node 1 listens on channel 1 while 0 transmits on 0 and 2 on 1:
        // only the channel-1 transmission is heard, no collision.
        struct Fixed(Action<u32>);
        impl NodeProgram for Fixed {
            type Msg = u32;
            fn act(&mut self, _ctx: &NodeCtx) -> Action<u32> {
                self.0.clone()
            }
            fn on_receive(&mut self, _ctx: &NodeCtx, from: NodeId, msg: &u32) {
                assert_eq!(from, NodeId(2));
                assert_eq!(*msg, 7);
            }
        }
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(1));
        let mut e = Engine::new(
            &g,
            EngineConfig {
                channels: 2,
                max_rounds: 1,
                record_trace: true,
            },
            |id| match id.0 {
                0 => Fixed(Action::Transmit { channel: 0, msg: 9 }),
                2 => Fixed(Action::Transmit { channel: 1, msg: 7 }),
                _ => Fixed(Action::Listen { channel: 1 }),
            },
        );
        e.run();
        assert_eq!(e.trace().delivery_count(), 1);
        assert_eq!(e.trace().collision_count(), 0);
    }

    #[test]
    fn dead_nodes_do_not_transmit_or_receive() {
        let mut e = engine_on_path(4);
        let mut plan = FailurePlan::new();
        plan.kill_node(NodeId(2), 1);
        e.set_failures(plan);
        let out = e.run();
        // Flood stalls at node 2: nodes 2 and 3 never get the message.
        assert_eq!(out.stop, StopReason::RoundLimit);
        assert!(e.program(NodeId(1)).unwrap().has_msg);
        assert!(!e.program(NodeId(3)).unwrap().has_msg);
    }

    #[test]
    fn link_failure_blocks_delivery() {
        let mut e = engine_on_path(3);
        let mut plan = FailurePlan::new();
        plan.kill_link(NodeId(1), NodeId(2), 1);
        e.set_failures(plan);
        e.run();
        assert!(e.program(NodeId(1)).unwrap().has_msg);
        assert!(!e.program(NodeId(2)).unwrap().has_msg);
    }

    #[test]
    fn energy_is_metered() {
        let mut e = engine_on_path(2);
        let out = e.run();
        assert_eq!(out.rounds, 2);
        // Source: tx in round 1, sleeps in round 2.
        assert_eq!(e.meter(NodeId(0)).tx_rounds, 1);
        assert_eq!(e.meter(NodeId(0)).sleep_rounds, 1);
        // Receiver: listens round 1, transmits round 2.
        assert_eq!(e.meter(NodeId(1)).listen_rounds, 1);
        assert_eq!(e.meter(NodeId(1)).tx_rounds, 1);
        let report = e.energy_report();
        assert_eq!(report.max_awake, 2);
        assert_eq!(report.nodes, 2);
    }

    /// Transmits the beacon value every round, forever.
    struct Beacon;
    impl NodeProgram for Beacon {
        type Msg = u32;
        fn act(&mut self, _ctx: &NodeCtx) -> Action<u32> {
            Action::transmit(7)
        }
        fn on_receive(&mut self, _ctx: &NodeCtx, _from: NodeId, _msg: &u32) {}
    }

    /// Listens every round, remembering the rounds it heard something.
    struct Ear {
        heard: Vec<Round>,
    }
    impl NodeProgram for Ear {
        type Msg = u32;
        fn act(&mut self, _ctx: &NodeCtx) -> Action<u32> {
            Action::listen()
        }
        fn on_receive(&mut self, ctx: &NodeCtx, _from: NodeId, _msg: &u32) {
            self.heard.push(ctx.round);
        }
    }

    /// Beacon → Ear pair, dispatching per node id.
    enum Pair {
        B(Beacon),
        E(Ear),
    }
    impl NodeProgram for Pair {
        type Msg = u32;
        fn act(&mut self, ctx: &NodeCtx) -> Action<u32> {
            match self {
                Pair::B(p) => p.act(ctx),
                Pair::E(p) => p.act(ctx),
            }
        }
        fn on_receive(&mut self, ctx: &NodeCtx, from: NodeId, msg: &u32) {
            match self {
                Pair::B(p) => p.on_receive(ctx, from, msg),
                Pair::E(p) => p.on_receive(ctx, from, msg),
            }
        }
    }

    fn beacon_pair(max_rounds: Round) -> (&'static Graph, EngineConfig) {
        let g = Box::leak(Box::new(path(2)));
        let cfg = EngineConfig {
            max_rounds,
            record_trace: true,
            ..Default::default()
        };
        (g, cfg)
    }

    fn make_pair(id: NodeId) -> Pair {
        if id == NodeId(0) {
            Pair::B(Beacon)
        } else {
            Pair::E(Ear { heard: Vec::new() })
        }
    }

    fn heard(e: &Engine<'_, Pair>, id: NodeId) -> Vec<Round> {
        match e.program(id).unwrap() {
            Pair::E(ear) => ear.heard.clone(),
            Pair::B(_) => panic!("not an ear"),
        }
    }

    #[test]
    fn total_loss_silences_the_channel() {
        let (g, cfg) = beacon_pair(6);
        let mut e = Engine::new(g, cfg, make_pair);
        e.set_loss(LossModel::from_probability(1.0, 11));
        e.run();
        assert_eq!(heard(&e, NodeId(1)), Vec::<Round>::new());
        assert_eq!(e.trace().delivery_count(), 0);
        assert_eq!(e.trace().try_drop_count(), Some(6));
        // Drops are not collisions — the receiver just hears silence.
        assert_eq!(e.trace().collision_count(), 0);
    }

    #[test]
    fn partial_loss_drops_some_receptions_deterministically() {
        let run = || {
            let (g, cfg) = beacon_pair(64);
            let mut e = Engine::new(g, cfg, make_pair);
            e.set_loss(LossModel::from_probability(0.5, 3));
            e.run();
            heard(&e, NodeId(1))
        };
        let a = run();
        assert!(!a.is_empty() && a.len() < 64, "heard {} of 64", a.len());
        assert_eq!(a, run());
    }

    #[test]
    fn lossless_model_changes_nothing() {
        let (g, cfg) = beacon_pair(6);
        let mut e = Engine::new(g, cfg, make_pair);
        e.set_loss(LossModel::none());
        e.run();
        assert_eq!(heard(&e, NodeId(1)), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(e.trace().try_drop_count(), Some(0));
    }

    #[test]
    fn revived_node_resumes_receiving() {
        let (g, cfg) = beacon_pair(6);
        let mut e = Engine::new(g, cfg, make_pair);
        let mut plan = FailurePlan::new();
        plan.kill_node_for(NodeId(1), 3, 2); // dead rounds 3, 4
        e.set_failures(plan);
        e.run();
        assert_eq!(heard(&e, NodeId(1)), vec![1, 2, 5, 6]);
        let ev = e.trace().events();
        assert!(ev.contains(&TraceEvent::NodeDeath {
            round: 3,
            node: NodeId(1)
        }));
        assert!(ev.contains(&TraceEvent::NodeRevive {
            round: 5,
            node: NodeId(1)
        }));
    }

    #[test]
    fn revived_node_resumes_transmitting() {
        // 0 —— 1: the *beacon* suffers the outage; the ear hears the gap.
        let g = Box::leak(Box::new(path(2)));
        let cfg = EngineConfig {
            max_rounds: 6,
            record_trace: true,
            ..Default::default()
        };
        let mut e = Engine::new(g, cfg, |id| {
            if id == NodeId(0) {
                Pair::E(Ear { heard: Vec::new() })
            } else {
                Pair::B(Beacon)
            }
        });
        let mut plan = FailurePlan::new();
        plan.kill_node_for(NodeId(1), 2, 3); // dark rounds 2, 3, 4
        e.set_failures(plan);
        e.run();
        assert_eq!(heard(&e, NodeId(0)), vec![1, 5, 6]);
    }

    #[test]
    fn revival_composes_with_link_kills() {
        // Node 1 revives at round 5, but the link dies at round 6: it hears
        // exactly one more beacon and then permanent silence.
        let (g, cfg) = beacon_pair(10);
        let mut e = Engine::new(g, cfg, make_pair);
        let mut plan = FailurePlan::new();
        plan.kill_node_for(NodeId(1), 3, 2); // dead rounds 3, 4
        plan.kill_link(NodeId(0), NodeId(1), 6);
        e.set_failures(plan);
        e.run();
        assert_eq!(heard(&e, NodeId(1)), vec![1, 2, 5]);
    }

    #[test]
    #[should_panic(expected = "used channel")]
    fn out_of_range_channel_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            type Msg = ();
            fn act(&mut self, _ctx: &NodeCtx) -> Action<()> {
                Action::Listen { channel: 3 }
            }
            fn on_receive(&mut self, _ctx: &NodeCtx, _from: NodeId, _msg: &()) {}
        }
        let g = path(1);
        let mut e = Engine::new(&g, EngineConfig::default(), |_| Bad);
        e.step();
    }
}
