//! Per-node energy accounting.
//!
//! The paper's energy claim (Theorem 1(2), Figure 9) is stated in *awake
//! rounds*: a node spends energy whenever its radio is on, i.e. while
//! transmitting or listening. The meter additionally separates transmit
//! and listen rounds so that weighted energy models (tx usually costs more
//! than rx) can be reported, and records the last awake round, which gives
//! the "how long until this node could power down for good" view.

use crate::Round;

/// Energy counters for a single node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyMeter {
    /// Rounds spent transmitting.
    pub tx_rounds: u64,
    /// Rounds spent listening.
    pub listen_rounds: u64,
    /// Rounds with the radio off.
    pub sleep_rounds: u64,
    /// Last round (1-based) in which the node was awake; 0 if never.
    pub last_awake_round: Round,
}

impl EnergyMeter {
    /// Count a transmitting round.
    pub fn record_tx(&mut self, round: Round) {
        self.tx_rounds += 1;
        self.last_awake_round = round;
    }

    /// Count a listening round.
    pub fn record_listen(&mut self, round: Round) {
        self.listen_rounds += 1;
        self.last_awake_round = round;
    }

    /// Count a sleeping round.
    pub fn record_sleep(&mut self) {
        self.sleep_rounds += 1;
    }

    /// Rounds with the radio powered on — the paper's "awake" metric.
    pub fn awake_rounds(&self) -> u64 {
        self.tx_rounds + self.listen_rounds
    }

    /// Weighted energy: `tx_cost·tx + rx_cost·listen` in arbitrary units.
    pub fn weighted(&self, tx_cost: f64, rx_cost: f64) -> f64 {
        self.tx_rounds as f64 * tx_cost + self.listen_rounds as f64 * rx_cost
    }
}

/// Aggregated energy over all nodes of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Largest awake-round count over the nodes.
    pub max_awake: u64,
    /// Mean awake rounds per node.
    pub mean_awake: f64,
    /// Total transmitting rounds across the run.
    pub total_tx: u64,
    /// Total listening rounds across the run.
    pub total_listen: u64,
    /// Number of metered nodes.
    pub nodes: usize,
}

impl EnergyReport {
    /// Summarise a slice of per-node meters (one entry per participating
    /// node; pass only the meters of nodes that took part).
    pub fn from_meters<'a, I: IntoIterator<Item = &'a EnergyMeter>>(meters: I) -> Self {
        let mut r = EnergyReport::default();
        let mut sum_awake = 0u64;
        for m in meters {
            let awake = m.awake_rounds();
            r.max_awake = r.max_awake.max(awake);
            sum_awake += awake;
            r.total_tx += m.tx_rounds;
            r.total_listen += m.listen_rounds;
            r.nodes += 1;
        }
        if r.nodes > 0 {
            r.mean_awake = sum_awake as f64 / r.nodes as f64;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awake_counts_tx_and_listen() {
        let mut m = EnergyMeter::default();
        m.record_tx(1);
        m.record_listen(2);
        m.record_sleep();
        m.record_listen(4);
        assert_eq!(m.awake_rounds(), 3);
        assert_eq!(m.sleep_rounds, 1);
        assert_eq!(m.last_awake_round, 4);
    }

    #[test]
    fn weighted_energy() {
        let mut m = EnergyMeter::default();
        m.record_tx(1);
        m.record_tx(2);
        m.record_listen(3);
        assert_eq!(m.weighted(2.0, 1.0), 5.0);
    }

    #[test]
    fn report_aggregates() {
        let mut a = EnergyMeter::default();
        a.record_tx(1);
        let mut b = EnergyMeter::default();
        b.record_listen(1);
        b.record_listen(2);
        b.record_listen(3);
        let r = EnergyReport::from_meters([&a, &b]);
        assert_eq!(r.max_awake, 3);
        assert_eq!(r.mean_awake, 2.0);
        assert_eq!(r.total_tx, 1);
        assert_eq!(r.total_listen, 3);
        assert_eq!(r.nodes, 2);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = EnergyReport::from_meters(std::iter::empty());
        assert_eq!(r, EnergyReport::default());
    }
}
