//! Property-based tests of the campaign journal: random record
//! sequences must round-trip exactly, and arbitrary truncation or
//! single-byte corruption must never mis-parse a record that was
//! durably written before the damage point.
//!
//! The journal's crash model says only the tail frame can tear (appends
//! are a single `write(2)` + `fdatasync`), but the reader is tested
//! against damage *anywhere*: whatever byte gets cut or flipped, every
//! frame wholly before the damaged frame must come back byte-exact, and
//! nothing after it may be invented.

use dsnet_campaign::{read_journal, Journal, TrialRecord};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch path per proptest case (cases run in one process).
fn tmp(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("dsnet-journal-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}-{}.journal",
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A varied record derived from one seed: exercises every optional
/// field and a non-trivial float (`mean_awake` travels as IEEE bits).
fn rec(h: u64) -> TrialRecord {
    TrialRecord {
        rounds: h % 1_000_003,
        delivered: h % 97,
        targets: 97,
        targets_alive: 96,
        delivered_alive: (h % 97).min(96),
        t50: h.is_multiple_of(2).then_some(h % 31),
        t90: (!h.is_multiple_of(3)).then_some(h % 61),
        t_full: h.is_multiple_of(5).then_some(h % 127),
        repair_rounds: h.is_multiple_of(7).then_some(h % 11),
        max_awake: h % 255,
        mean_awake: (h % 100_000) as f64 / 7.0,
        collisions: (h % 2 == 1).then_some(h % 4),
        bound: h % 4096,
        nodes: 97,
        reconfigs: h.is_multiple_of(11).then_some(h % 13),
        slot_churn: h.is_multiple_of(13).then_some(h % 17),
    }
}

/// Write a full journal (header + intent/commit per trial) and return
/// its raw bytes alongside the records it holds.
fn build_journal(path: &PathBuf, fingerprint: u64, seeds: &[u64]) -> (Vec<u8>, Vec<TrialRecord>) {
    let journal = Journal::create(path, fingerprint, seeds.len()).expect("create journal");
    let records: Vec<TrialRecord> = seeds.iter().map(|&h| rec(h)).collect();
    for (i, r) in records.iter().enumerate() {
        journal.record_intent(i).expect("intent");
        journal.record_commit(i, r).expect("commit");
    }
    drop(journal);
    let bytes = std::fs::read(path).expect("read journal bytes");
    (bytes, records)
}

/// Frame end offsets, in order, by walking the length prefixes of an
/// intact journal. Frame 0 is the header; frame `2 + 2i` commits trial
/// `i`.
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = 0usize;
    while off + 8 <= bytes.len() {
        let len = u32::from_be_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        assert!(off <= bytes.len(), "intact journal misframed");
        ends.push(off);
    }
    assert_eq!(*ends.last().unwrap(), bytes.len());
    ends
}

/// Index of the frame containing byte `pos`.
fn frame_of(ends: &[usize], pos: usize) -> usize {
    ends.iter().position(|&e| pos < e).expect("pos in file")
}

/// The commits that must survive when frames `>= damaged` are lost:
/// trial `i`'s commit frame is `2 + 2i`.
fn surviving(records: &[TrialRecord], damaged: usize) -> Vec<(usize, TrialRecord)> {
    records
        .iter()
        .enumerate()
        .filter(|(i, _)| 2 + 2 * i < damaged)
        .map(|(i, r)| (i, r.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_record_sequences_roundtrip(
        fingerprint in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 1..24),
    ) {
        let path = tmp("roundtrip");
        let (_, records) = build_journal(&path, fingerprint, &seeds);
        let contents = read_journal(&path).expect("intact journal reads");
        prop_assert_eq!(contents.fingerprint, fingerprint);
        prop_assert_eq!(contents.trials, records.len());
        prop_assert_eq!(contents.torn_bytes, 0);
        prop_assert_eq!(contents.committed_count(), records.len());
        let expected: Vec<(usize, TrialRecord)> =
            records.iter().cloned().enumerate().collect();
        prop_assert_eq!(&contents.commits, &expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_never_misparses_earlier_records(
        fingerprint in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 1..16),
        cut_pick in any::<usize>(),
    ) {
        let path = tmp("truncate");
        let (full, records) = build_journal(&path, fingerprint, &seeds);
        let ends = frame_ends(&full);
        let cut = cut_pick % (full.len() + 1);
        std::fs::write(&path, &full[..cut]).expect("truncate");
        match read_journal(&path) {
            Ok(contents) => {
                // Header frame must be intact for any Ok.
                prop_assert!(cut >= ends[0]);
                // A frame survives iff it fits wholly under the cut.
                let damaged = ends.iter().filter(|&&e| e <= cut).count();
                prop_assert_eq!(&contents.commits, &surviving(&records, damaged));
                prop_assert_eq!(contents.valid_len as usize, ends[damaged - 1]);
            }
            Err(_) => {
                // Only losing (part of) the header justifies an error.
                prop_assert!(cut < ends[0], "error despite intact header at cut {cut}");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn single_byte_corruption_never_misparses_earlier_records(
        fingerprint in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 1..16),
        pos_pick in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let path = tmp("corrupt");
        let (full, records) = build_journal(&path, fingerprint, &seeds);
        let ends = frame_ends(&full);
        let pos = pos_pick % full.len();
        let mut bytes = full.clone();
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).expect("corrupt");
        let damaged = frame_of(&ends, pos);
        match read_journal(&path) {
            Ok(contents) => {
                prop_assert!(damaged > 0, "corrupted header must not read Ok");
                prop_assert_eq!(&contents.commits, &surviving(&records, damaged));
                prop_assert_eq!(contents.valid_len as usize, ends[damaged - 1]);
            }
            Err(_) => {
                prop_assert!(damaged == 0, "error despite intact header (byte {pos} in frame {damaged})");
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
