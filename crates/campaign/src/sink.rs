//! Lock-free streaming aggregation of trial records.
//!
//! Workers push each condensed [`TrialRecord`] into the sink the moment
//! the trial finishes — from any thread, with no locks — so live
//! progress can show per-cell statistics while the campaign runs.
//!
//! Every accumulator is an **order-independent integer**: sums, maxima
//! and counts over `u64` quantities commute, so the snapshot a reader
//! observes after all trials completed is identical no matter how the
//! schedule interleaved. Float statistics (means, percentiles) are *not*
//! computed here — the engine derives them after the pool joins, folding
//! the per-trial slot array in trial-index order, which is what keeps
//! artifacts byte-identical across thread counts.
//!
//! The module also owns the durable end of the pipeline:
//! [`write_artifact`], the write-temp-then-rename path every rendered
//! artifact goes through so a crash can never leave a truncated file
//! that a later resume would mistake for a complete one.

use crate::spec::TrialRecord;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed ordering is sufficient everywhere: each counter is an
/// independent monotone accumulator and readers only need eventual
/// per-counter consistency (the authoritative fold happens after join).
const ORD: Ordering = Ordering::Relaxed;

/// Accumulators for one aggregation cell.
#[derive(Debug, Default)]
pub struct CellAccum {
    trials: AtomicU64,
    completed: AtomicU64,
    rounds_sum: AtomicU64,
    rounds_max: AtomicU64,
    delivered_sum: AtomicU64,
    targets_sum: AtomicU64,
    awake_max: AtomicU64,
    collisions_sum: AtomicU64,
    collisions_known: AtomicU64,
}

impl CellAccum {
    fn record(&self, rec: &TrialRecord) {
        self.trials.fetch_add(1, ORD);
        self.completed.fetch_add(rec.completed() as u64, ORD);
        self.rounds_sum.fetch_add(rec.rounds, ORD);
        self.rounds_max.fetch_max(rec.rounds, ORD);
        self.delivered_sum.fetch_add(rec.delivered, ORD);
        self.targets_sum.fetch_add(rec.targets, ORD);
        self.awake_max.fetch_max(rec.max_awake, ORD);
        if let Some(c) = rec.collisions {
            self.collisions_sum.fetch_add(c, ORD);
            self.collisions_known.fetch_add(1, ORD);
        }
    }
}

/// A point-in-time view of one cell's accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSnapshot {
    /// Trials recorded so far.
    pub trials: u64,
    /// Trials that delivered to every target.
    pub completed: u64,
    /// Sum of broadcast rounds.
    pub rounds_sum: u64,
    /// Largest broadcast round count.
    pub rounds_max: u64,
    /// Sum of delivered targets.
    pub delivered_sum: u64,
    /// Sum of intended targets.
    pub targets_sum: u64,
    /// Largest per-node awake time seen.
    pub awake_max: u64,
    /// Sum of collision counts over trials that measured them.
    pub collisions_sum: u64,
    /// Trials whose collision count was measured (trace on).
    pub collisions_known: u64,
}

impl CellSnapshot {
    /// Mean rounds over recorded trials (0 when empty).
    pub fn mean_rounds(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.rounds_sum as f64 / self.trials as f64
        }
    }

    /// Aggregate delivery ratio (1 when no targets recorded yet).
    pub fn delivery_ratio(&self) -> f64 {
        if self.targets_sum == 0 {
            1.0
        } else {
            self.delivered_sum as f64 / self.targets_sum as f64
        }
    }
}

/// The campaign-wide sink: one [`CellAccum`] per cell plus a global
/// progress counter.
#[derive(Debug)]
pub struct CampaignSink {
    cells: Vec<CellAccum>,
    done: AtomicU64,
}

impl CampaignSink {
    /// A sink with `cells` empty cell accumulators.
    pub fn new(cells: usize) -> CampaignSink {
        CampaignSink {
            cells: (0..cells).map(|_| CellAccum::default()).collect(),
            done: AtomicU64::new(0),
        }
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Record a finished trial into its cell. Returns the new global
    /// completion count (1-based), for progress display.
    pub fn record(&self, cell: usize, rec: &TrialRecord) -> u64 {
        self.cells[cell].record(rec);
        self.done.fetch_add(1, ORD) + 1
    }

    /// Trials recorded so far across all cells.
    pub fn done(&self) -> u64 {
        self.done.load(ORD)
    }

    /// Snapshot one cell's accumulators.
    pub fn snapshot(&self, cell: usize) -> CellSnapshot {
        let c = &self.cells[cell];
        CellSnapshot {
            trials: c.trials.load(ORD),
            completed: c.completed.load(ORD),
            rounds_sum: c.rounds_sum.load(ORD),
            rounds_max: c.rounds_max.load(ORD),
            delivered_sum: c.delivered_sum.load(ORD),
            targets_sum: c.targets_sum.load(ORD),
            awake_max: c.awake_max.load(ORD),
            collisions_sum: c.collisions_sum.load(ORD),
            collisions_known: c.collisions_known.load(ORD),
        }
    }
}

/// Durably write a campaign artifact: write-temp, fsync, rename.
///
/// A crash mid-write must never leave a truncated `.json`/`.csv` at the
/// destination — a later `--resume` (or a human) would take the partial
/// file for a complete artifact. The bytes land in a `<name>.tmp`
/// sibling first, are fsync'd, and only then atomically renamed over
/// `path`; the destination therefore always holds either the previous
/// complete artifact or the new one, never a torn intermediate. The
/// parent directory is fsync'd afterwards so the rename itself is
/// durable.
pub fn write_artifact(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Directory fsync is advisory on some filesystems; failure to
        // open the directory is not a failure to write the artifact.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rounds: u64, delivered: u64, targets: u64, collisions: Option<u64>) -> TrialRecord {
        TrialRecord {
            rounds,
            delivered,
            targets,
            targets_alive: targets,
            delivered_alive: delivered,
            t50: None,
            t90: None,
            t_full: None,
            repair_rounds: None,
            max_awake: rounds,
            mean_awake: rounds as f64,
            collisions,
            bound: rounds + 1,
            nodes: targets,
            reconfigs: None,
            slot_churn: None,
        }
    }

    #[test]
    fn accumulates_order_independently() {
        let records = [
            rec(10, 5, 5, Some(0)),
            rec(20, 4, 5, None),
            rec(30, 5, 5, Some(2)),
        ];
        let forward = CampaignSink::new(1);
        for r in &records {
            forward.record(0, r);
        }
        let backward = CampaignSink::new(1);
        for r in records.iter().rev() {
            backward.record(0, r);
        }
        assert_eq!(forward.snapshot(0), backward.snapshot(0));
        let s = forward.snapshot(0);
        assert_eq!(s.trials, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.rounds_sum, 60);
        assert_eq!(s.rounds_max, 30);
        assert_eq!(s.collisions_known, 2);
        assert_eq!(s.collisions_sum, 2);
        assert_eq!(s.mean_rounds(), 20.0);
        assert_eq!(s.delivery_ratio(), 14.0 / 15.0);
    }

    #[test]
    fn concurrent_recording_matches_serial() {
        let sink = CampaignSink::new(2);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        sink.record((t % 2) as usize, &rec(i, 1, 1, Some(i)));
                    }
                });
            }
        });
        assert_eq!(sink.done(), 400);
        for cell in 0..2 {
            let s = sink.snapshot(cell);
            assert_eq!(s.trials, 200);
            assert_eq!(s.rounds_sum, 2 * (0..100).sum::<u64>());
            assert_eq!(s.rounds_max, 99);
        }
    }

    #[test]
    fn empty_snapshot_is_benign() {
        let s = CampaignSink::new(1).snapshot(0);
        assert_eq!(s.mean_rounds(), 0.0);
        assert_eq!(s.delivery_ratio(), 1.0);
    }

    #[test]
    fn artifact_writes_replace_atomically() {
        let dir = std::env::temp_dir().join(format!("dsnet-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("artifact.json");
        write_artifact(&path, b"first complete artifact").expect("write");
        assert_eq!(
            std::fs::read(&path).expect("read"),
            b"first complete artifact"
        );
        write_artifact(&path, b"second").expect("overwrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        // The temp sibling never survives a completed write.
        assert!(!dir.join("artifact.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
