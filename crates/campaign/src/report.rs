//! Artifact rendering: hand-rolled JSON and CSV.
//!
//! No serialization crates exist in this build environment, so the
//! emitters are written out longhand. Both formats are deterministic:
//! field order is fixed, floats use Rust's shortest-roundtrip `Display`
//! (a pure function of the value), and rows follow the grid order — the
//! byte-identical-across-thread-counts guarantee extends to these
//! artifacts.

use crate::engine::{CampaignResult, CellSummary};
use crate::spec::{repair_label, Trial, TrialRecord};
use dsnet_metrics::Summary;
use std::fmt::Write;

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or("null".into(), |v| v.to_string())
}

fn csv_opt_u64(v: Option<u64>) -> String {
    v.map_or(String::new(), |v| v.to_string())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON number for an `f64`: shortest-roundtrip decimal, with the
/// non-finite values (not valid JSON numbers) mapped to `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_summary(out: &mut String, s: &Summary, percentiles: Option<(f64, f64)>) {
    let _ = write!(
        out,
        "{{\"mean\": {}, \"std\": {}, \"min\": {}, \"max\": {}",
        json_f64(s.mean),
        json_f64(s.std),
        json_f64(s.min),
        json_f64(s.max)
    );
    if let Some((p50, p90)) = percentiles {
        let _ = write!(
            out,
            ", \"p50\": {}, \"p90\": {}",
            json_f64(p50),
            json_f64(p90)
        );
    }
    out.push('}');
}

fn json_cell(out: &mut String, c: &CellSummary) {
    let _ = write!(
        out,
        "{{\"protocol\": \"{}\", \"channels\": {}, \"failure\": \"{}\", \"churn\": \"{}\", \"loss\": \"{}\", \"repair\": \"{}\", \"mobility\": \"{}\", \"n\": {}, \"trials\": {}, \"completed\": {}, \"rounds\": ",
        c.protocol.name(),
        c.channels,
        c.failure.label(),
        c.churn.label(),
        c.loss.label(),
        repair_label(c.repair),
        c.mobility.label(),
        c.n,
        c.trials,
        c.completed
    );
    json_summary(out, &c.rounds, Some((c.rounds_p50, c.rounds_p90)));
    out.push_str(", \"delivery\": ");
    json_summary(out, &c.delivery, None);
    out.push_str(", \"delivery_alive\": ");
    json_summary(out, &c.delivery_alive, None);
    let _ = write!(out, ", \"repaired\": {}, \"repair_rounds\": ", c.repaired);
    match &c.repair_rounds {
        Some(s) => json_summary(out, s, None),
        None => out.push_str("null"),
    }
    out.push_str(", \"max_awake\": ");
    json_summary(out, &c.max_awake, None);
    out.push_str(", \"mean_awake\": ");
    json_summary(out, &c.mean_awake, None);
    out.push_str(", \"bound\": ");
    json_summary(out, &c.bound, None);
    match c.collisions {
        Some(total) => {
            let _ = write!(out, ", \"collisions\": {total}");
        }
        None => out.push_str(", \"collisions\": null"),
    }
    out.push_str(", \"reconfigs\": ");
    match &c.reconfigs {
        Some(s) => json_summary(out, s, None),
        None => out.push_str("null"),
    }
    out.push_str(", \"slot_churn\": ");
    match &c.slot_churn {
        Some(s) => json_summary(out, s, None),
        None => out.push_str("null"),
    }
    out.push('}');
}

fn json_trial(out: &mut String, t: &Trial, r: &TrialRecord) {
    let _ = write!(
        out,
        "{{\"index\": {}, \"protocol\": \"{}\", \"channels\": {}, \"failure\": \"{}\", \"churn\": \"{}\", \"loss\": \"{}\", \"repair\": \"{}\", \"mobility\": \"{}\", \"n\": {}, \"rep\": {}, \"scenario_seed\": {}, \"stream_seed\": {}, \"rounds\": {}, \"delivered\": {}, \"targets\": {}, \"targets_alive\": {}, \"delivered_alive\": {}, \"t50\": {}, \"t90\": {}, \"t_full\": {}, \"repair_rounds\": {}, \"max_awake\": {}, \"mean_awake\": {}, \"collisions\": {}, \"bound\": {}, \"nodes\": {}, \"reconfigs\": {}, \"slot_churn\": {}}}",
        t.index,
        t.protocol.name(),
        t.channels,
        t.failure.label(),
        t.churn.label(),
        t.loss.label(),
        repair_label(t.repair),
        t.mobility.label(),
        t.n,
        t.rep,
        t.scenario_seed,
        t.stream_seed,
        r.rounds,
        r.delivered,
        r.targets,
        r.targets_alive,
        r.delivered_alive,
        json_opt_u64(r.t50),
        json_opt_u64(r.t90),
        json_opt_u64(r.t_full),
        json_opt_u64(r.repair_rounds),
        r.max_awake,
        json_f64(r.mean_awake),
        json_opt_u64(r.collisions),
        r.bound,
        r.nodes,
        json_opt_u64(r.reconfigs),
        json_opt_u64(r.slot_churn)
    );
}

/// Render the full campaign result as a JSON document.
///
/// `include_trials` additionally embeds the per-trial records (one object
/// per trial, in identity order) next to the cell aggregates.
pub fn render_json(result: &CampaignResult, include_trials: bool) -> String {
    let spec = &result.spec;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"campaign\": \"{}\",\n  \"base_seed\": {},\n  \"field_side\": {},\n  \"reps\": {},\n  \"record_trace\": {},\n",
        json_escape(&spec.name),
        spec.base_seed,
        json_f64(spec.field_side),
        spec.reps,
        spec.record_trace
    );
    out.push_str("  \"axes\": {\"protocols\": [");
    push_list(
        &mut out,
        spec.protocols.iter().map(|p| format!("\"{}\"", p.name())),
    );
    out.push_str("], \"channels\": [");
    push_list(&mut out, spec.channels.iter().map(|c| c.to_string()));
    out.push_str("], \"failures\": [");
    push_list(
        &mut out,
        spec.failures.iter().map(|f| format!("\"{}\"", f.label())),
    );
    out.push_str("], \"churn\": [");
    push_list(
        &mut out,
        spec.churn.iter().map(|c| format!("\"{}\"", c.label())),
    );
    out.push_str("], \"losses\": [");
    push_list(
        &mut out,
        spec.losses.iter().map(|l| format!("\"{}\"", l.label())),
    );
    out.push_str("], \"repair\": [");
    push_list(
        &mut out,
        spec.repair
            .iter()
            .map(|&r| format!("\"{}\"", repair_label(r))),
    );
    out.push_str("], \"mobility\": [");
    push_list(
        &mut out,
        spec.mobility.iter().map(|m| format!("\"{}\"", m.label())),
    );
    out.push_str("], \"ns\": [");
    push_list(&mut out, spec.ns.iter().map(|n| n.to_string()));
    let _ = write!(
        out,
        "]}},\n  \"trial_count\": {},\n  \"cells\": [\n",
        result.trials.len()
    );
    for (i, cell) in result.cells.iter().enumerate() {
        out.push_str("    ");
        json_cell(&mut out, cell);
        out.push_str(if i + 1 < result.cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]");
    if include_trials {
        out.push_str(",\n  \"trials\": [\n");
        for (i, (t, r)) in result.trials.iter().zip(&result.records).enumerate() {
            out.push_str("    ");
            json_trial(&mut out, t, r);
            out.push_str(if i + 1 < result.trials.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]");
    }
    out.push_str("\n}\n");
    out
}

fn push_list(out: &mut String, items: impl Iterator<Item = String>) {
    let mut first = true;
    for item in items {
        if !first {
            out.push_str(", ");
        }
        out.push_str(&item);
        first = false;
    }
}

/// Render the per-cell aggregates as CSV (header + one row per cell).
pub fn render_csv(result: &CampaignResult) -> String {
    let mut out = String::from(
        "protocol,channels,failure,churn,loss,repair,mobility,n,trials,completed,\
         rounds_mean,rounds_std,rounds_min,rounds_p50,rounds_p90,rounds_max,\
         delivery_mean,delivery_min,delivery_alive_mean,delivery_alive_min,\
         repaired,repair_rounds_mean,max_awake_mean,max_awake_max,\
         mean_awake_mean,bound_mean,collisions,reconfigs_mean,slot_churn_mean\n",
    );
    for c in &result.cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            c.protocol.name(),
            c.channels,
            c.failure.label(),
            c.churn.label(),
            c.loss.label(),
            repair_label(c.repair),
            c.mobility.label(),
            c.n,
            c.trials,
            c.completed,
            c.rounds.mean,
            c.rounds.std,
            c.rounds.min,
            c.rounds_p50,
            c.rounds_p90,
            c.rounds.max,
            c.delivery.mean,
            c.delivery.min,
            c.delivery_alive.mean,
            c.delivery_alive.min,
            c.repaired,
            c.repair_rounds
                .as_ref()
                .map_or(String::new(), |s| s.mean.to_string()),
            c.max_awake.mean,
            c.max_awake.max,
            c.mean_awake.mean,
            c.bound.mean,
            c.collisions.map_or(String::new(), |v| v.to_string()),
            c.reconfigs
                .as_ref()
                .map_or(String::new(), |s| s.mean.to_string()),
            c.slot_churn
                .as_ref()
                .map_or(String::new(), |s| s.mean.to_string()),
        );
    }
    out
}

/// Render every trial as CSV (header + one row per trial, identity order).
pub fn render_trials_csv(result: &CampaignResult) -> String {
    let mut out = String::from(
        "index,protocol,channels,failure,churn,loss,repair,mobility,n,rep,scenario_seed,stream_seed,\
         rounds,delivered,targets,targets_alive,delivered_alive,t50,t90,t_full,\
         repair_rounds,max_awake,mean_awake,collisions,bound,nodes,reconfigs,slot_churn\n",
    );
    for (t, r) in result.trials.iter().zip(&result.records) {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            t.index,
            t.protocol.name(),
            t.channels,
            t.failure.label(),
            t.churn.label(),
            t.loss.label(),
            repair_label(t.repair),
            t.mobility.label(),
            t.n,
            t.rep,
            t.scenario_seed,
            t.stream_seed,
            r.rounds,
            r.delivered,
            r.targets,
            r.targets_alive,
            r.delivered_alive,
            csv_opt_u64(r.t50),
            csv_opt_u64(r.t90),
            csv_opt_u64(r.t_full),
            csv_opt_u64(r.repair_rounds),
            r.max_awake,
            r.mean_awake,
            csv_opt_u64(r.collisions),
            r.bound,
            r.nodes,
            csv_opt_u64(r.reconfigs),
            csv_opt_u64(r.slot_churn)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_campaign;
    use crate::spec::{CampaignSpec, ProtocolSpec, Trial, TrialRecord};

    fn synthetic(trial: &Trial) -> TrialRecord {
        let h = trial.scenario_seed ^ trial.stream_seed;
        TrialRecord {
            rounds: 10 + h % 50,
            delivered: trial.n as u64,
            targets: trial.n as u64,
            targets_alive: trial.n as u64,
            delivered_alive: trial.n as u64,
            t50: Some(4),
            t90: Some(9),
            t_full: Some(10 + h % 50),
            repair_rounds: None,
            max_awake: 7,
            mean_awake: 3.25,
            collisions: Some(0),
            bound: 99,
            nodes: trial.n as u64,
            reconfigs: None,
            slot_churn: None,
        }
    }

    fn result() -> crate::engine::CampaignResult {
        let mut spec = CampaignSpec::new("render-test");
        spec.protocols = vec![ProtocolSpec::ImprovedCff, ProtocolSpec::Dfo];
        spec.ns = vec![20];
        spec.reps = 2;
        run_campaign(&spec, &synthetic, 2, None)
    }

    #[test]
    fn json_is_stable_and_self_consistent() {
        let r = result();
        let a = render_json(&r, true);
        let b = render_json(&r, true);
        assert_eq!(a, b);
        assert!(a.contains("\"campaign\": \"render-test\""));
        assert!(a.contains("\"trial_count\": 4"));
        assert!(a.contains("\"collisions\": 0"));
        assert!(a.contains("\"p50\""));
        // Without trials the trial array is absent.
        assert!(!render_json(&r, false).contains("\"trials\": ["));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn csv_has_one_row_per_cell_and_trial() {
        let r = result();
        let cells = render_csv(&r);
        assert_eq!(cells.lines().count(), 1 + r.cells.len());
        assert!(cells.starts_with("protocol,"));
        let trials = render_trials_csv(&r);
        assert_eq!(trials.lines().count(), 1 + r.trials.len());
        for (i, line) in trials.lines().skip(1).enumerate() {
            assert!(line.starts_with(&format!("{i},")));
        }
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
