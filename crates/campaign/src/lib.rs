#![warn(missing_docs)]

//! A parallel, deterministic experiment-campaign engine.
//!
//! Every figure in the evaluation is a *campaign*: a declarative grid of
//! independent simulation trials (protocol × network size × channel count
//! × failure template × churn template × channel loss × repair ×
//! mobility × repetition), each fully determined by a seed. This crate expands a [`CampaignSpec`] into that
//! grid, executes the trials on a worker pool, streams condensed
//! [`TrialRecord`]s into a lock-free aggregation sink, and renders the
//! result as JSON / CSV artifacts plus per-cell summary tables.
//!
//! # Determinism contract
//!
//! A campaign's results are **bit-identical regardless of worker count**:
//!
//! 1. Trial order is fixed by [`CampaignSpec::expand`] (a pure function
//!    of the spec); the trial's position in that order is its identity.
//! 2. Every trial owns two private seeds derived with the SplitMix64
//!    mixer ([`dsnet_geom::rng::derive_seed`]):
//!    - `scenario_seed`, keyed by `(base_seed, n, rep)` **only** — so
//!      every protocol / channel-count / failure variant of the same
//!      repetition runs on the *identical deployment*, and comparisons
//!      across protocols are paired;
//!    - `stream_seed`, keyed by `(base_seed, trial index)` — the trial's
//!      private RNG stream for victim draws and churn placement.
//!
//!    No RNG state is shared between trials, so execution order cannot
//!    influence any trial's outcome.
//! 3. Workers publish each finished record into a per-trial
//!    [`OnceLock`](std::sync::OnceLock) slot; the aggregation that feeds
//!    the artifacts folds those slots **in trial-index order** after the
//!    pool joins. The concurrent sink only accumulates order-independent
//!    integer counters (sums / maxima / counts), used for live progress.
//!
//! Consequently `--threads 1` and `--threads 8` produce byte-identical
//! JSON and CSV artifacts — CI asserts this on every push.
//!
//! # Crash consistency
//!
//! Determinism makes resume *verifiable*: because an uninterrupted run's
//! artifacts are a pure function of the spec, a campaign that crashes
//! mid-flight can be resumed from its [`journal`] (append-only, fsync'd,
//! `intent`/`commit` records per trial) and must reproduce those exact
//! bytes — which CI proves by killing campaigns at injected crash points
//! and diffing the resumed artifacts against an uninterrupted baseline.
//! See the [`journal`] module for the format and fingerprint rules.

pub mod engine;
pub mod journal;
pub mod report;
pub mod sink;
pub mod spec;

pub use engine::{
    run_campaign, run_campaign_resumable, CampaignResult, CellSummary, Progress, TrialRunner,
};
pub use journal::{
    read_journal, spec_fingerprint, Journal, JournalContents, JournalError, JOURNAL_SCHEMA,
};
pub use report::{render_csv, render_json, render_trials_csv};
pub use sink::{write_artifact, CampaignSink, CellSnapshot};
pub use spec::{
    parse_repair, repair_label, CampaignSpec, ChurnTemplate, FailureTemplate, LossSpec,
    MobilitySpec, ProtocolSpec, Trial, TrialRecord,
};
