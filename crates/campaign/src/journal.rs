//! Crash-consistent campaign journal with verifiable resume.
//!
//! Schema `dsnet-campaign-journal/1`: an append-only file of
//! length-prefixed, CRC-checked records that lets `dsnet campaign
//! --resume` skip every trial whose result is already durable and still
//! emit artifacts **byte-identical** to an uninterrupted run — the
//! engine's thread-invariance contract makes resume correctness
//! provable, not assumed.
//!
//! # File format
//!
//! A journal is a sequence of *frames*:
//!
//! ```text
//! ┌───────────────┬───────────────┬─────────────────────┐
//! │ len: u32 BE   │ crc32: u32 BE │ payload (len bytes)  │
//! └───────────────┴───────────────┴─────────────────────┘
//! ```
//!
//! Every payload is one compact, integer-only JSON document (the
//! [`dsnet_codec`] model — the same codec as the wire protocol, so no
//! float-formatting divergence can creep into the journal). The first
//! frame is the **header**; each subsequent frame is an `intent` or
//! `commit` record:
//!
//! * `{"record":"header","schema":"dsnet-campaign-journal/1",
//!   "fingerprint":F,"trials":N}` — `F` is the [`spec_fingerprint`] of
//!   the fully-expanded spec (as two's-complement `i64`), `N` the
//!   expanded trial count.
//! * `{"record":"intent","trial":i}` — a worker is about to execute
//!   trial `i`.
//! * `{"record":"commit","trial":i,"digest":D,"data":{..}}` — trial `i`
//!   finished with the embedded [`TrialRecord`]; `D` is an FNV-1a hash
//!   of the rendered `data` document, re-verified on read.
//!
//! Appends are a single `write(2)` of the assembled frame followed by
//! `fdatasync`, so a crash can only tear the **tail** frame. The reader
//! tolerates exactly that: the first frame that fails to frame, CRC, or
//! parse marks the torn tail and everything from its offset on is
//! discarded (resume truncates it away before appending). A trial is
//! *done* iff a commit frame survived; `intent` without `commit` means
//! "started but not durable" and is re-executed.
//!
//! # Fingerprint rules
//!
//! [`spec_fingerprint`] hashes the schema name, the dsnet-campaign crate
//! version, the (thread-invariant) axis expansion order, every spec
//! scalar, and every expanded trial including its derived seeds. Any
//! mutation of the spec — or a binary whose expansion or seed derivation
//! changed — yields a different fingerprint, and [`Journal::resume`]
//! refuses the journal rather than silently mixing incompatible results.
//!
//! # Crash-point fault injection
//!
//! Setting `DSNET_CAMPAIGN_CRASH_AFTER=<n>` aborts the process
//! immediately after the `n`-th intent/commit append becomes durable
//! (the header does not count). The integration suite uses it to kill
//! campaigns at randomized append counts and assert the resumed
//! artifacts diff clean against an uninterrupted baseline.

use crate::spec::{repair_label, CampaignSpec, TrialRecord};
use dsnet_codec::{obj, parse, Json};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Journal schema identifier, recorded in (and required of) the header.
pub const JOURNAL_SCHEMA: &str = "dsnet-campaign-journal/1";

/// Environment variable: abort the process after the `n`-th durable
/// intent/commit append (deterministic crash-point fault injection).
pub const CRASH_AFTER_ENV: &str = "DSNET_CAMPAIGN_CRASH_AFTER";

const LEN_LIMIT: u32 = 1 << 20; // 1 MiB — far above any real record

/// Why a journal could not be created, read, or resumed.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Refusing to overwrite an existing journal file.
    Exists(PathBuf),
    /// The header frame is missing, damaged, or not a header.
    NoHeader,
    /// The header names a schema this build does not speak.
    SchemaMismatch(String),
    /// The journal was written for a different spec or binary.
    FingerprintMismatch {
        /// Fingerprint of the spec being resumed.
        expected: u64,
        /// Fingerprint recorded in the journal header.
        found: u64,
    },
    /// The header's trial count disagrees with the spec's expansion.
    TrialCountMismatch {
        /// `spec.trial_count()` of the spec being resumed.
        expected: usize,
        /// Count recorded in the journal header.
        found: usize,
    },
    /// A non-tail record is semantically invalid (out-of-range trial
    /// index, digest mismatch, unknown record kind).
    Corrupt {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// Every trial is already committed — there is nothing to resume.
    AlreadyComplete {
        /// Committed (= total) trial count.
        trials: usize,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Exists(p) => write!(
                f,
                "journal {} already exists; resume it with --resume or remove it first",
                p.display()
            ),
            JournalError::NoHeader => {
                write!(
                    f,
                    "journal has no readable header frame (not a campaign journal?)"
                )
            }
            JournalError::SchemaMismatch(s) => write!(
                f,
                "journal schema {s:?} is not {JOURNAL_SCHEMA:?}; this build cannot resume it"
            ),
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "spec fingerprint mismatch: journal was recorded for {found:#018x}, this \
                 campaign expands to {expected:#018x} — the spec flags or the dsnet binary \
                 changed; resume requires the exact original campaign"
            ),
            JournalError::TrialCountMismatch { expected, found } => write!(
                f,
                "journal records {found} trials but the spec expands to {expected}"
            ),
            JournalError::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
            JournalError::AlreadyComplete { trials } => write!(
                f,
                "journal already commits all {trials} trials; nothing to resume \
                 (rerun without --resume to recompute from scratch)"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Hashing primitives
// ---------------------------------------------------------------------

/// FNV-1a 64-bit accumulator: tiny, dependency-free, and stable across
/// platforms — all the journal needs from a digest.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_be_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Bitwise — journal
/// payloads are tens of bytes, so no table is worth its cache lines.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(crc & 1)));
        }
    }
    !crc
}

/// Fingerprint of a fully-expanded campaign: the resume compatibility
/// key. Covers the schema, this crate's version, the axis expansion
/// order, every spec scalar, and every expanded trial with its derived
/// seeds — so a journal binds to one exact (spec, binary) pair.
pub fn spec_fingerprint(spec: &CampaignSpec) -> u64 {
    let mut h = Fnv::new();
    h.write(JOURNAL_SCHEMA.as_bytes());
    h.write(env!("CARGO_PKG_VERSION").as_bytes());
    // The thread-invariant axis order of CampaignSpec::expand — part of
    // the identity: reordering expansion renumbers every trial.
    h.write(b"protocol,channels,failure,churn,loss,repair,mobility,n,rep");
    h.write(spec.name.as_bytes());
    h.write_u64(spec.field_side.to_bits());
    h.write_u64(spec.reps);
    h.write_u64(spec.base_seed);
    h.write_u64(spec.max_retries as u64);
    h.write_u64(spec.record_trace as u64);
    for trial in spec.expand() {
        h.write_u64(trial.index as u64);
        h.write(trial.protocol.name().as_bytes());
        h.write_u64(trial.channels as u64);
        h.write(trial.failure.label().as_bytes());
        h.write(trial.churn.label().as_bytes());
        h.write(trial.loss.label().as_bytes());
        h.write(repair_label(trial.repair).as_bytes());
        h.write(trial.mobility.label().as_bytes());
        h.write_u64(trial.n as u64);
        h.write_u64(trial.rep);
        h.write_u64(trial.scenario_seed);
        h.write_u64(trial.stream_seed);
    }
    h.finish()
}

// ---------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------

fn opt_u64(v: Option<u64>) -> Json {
    v.map_or(Json::Null, |v| Json::Int(v as i64))
}

fn get_u64(j: &Json, key: &str) -> Option<u64> {
    j.get(key)?.as_i64().map(|v| v as u64)
}

fn get_opt_u64(j: &Json, key: &str) -> Option<Option<u64>> {
    match j.get(key)? {
        Json::Null => Some(None),
        Json::Int(v) => Some(Some(*v as u64)),
        _ => None,
    }
}

/// Encode a [`TrialRecord`] as an integer-only JSON object. The one
/// float, `mean_awake`, travels as its exact IEEE-754 bit pattern
/// (`mean_awake_bits`), so the round-trip is lossless and the codec
/// stays float-free.
fn record_to_json(rec: &TrialRecord) -> Json {
    obj(vec![
        ("rounds", Json::Int(rec.rounds as i64)),
        ("delivered", Json::Int(rec.delivered as i64)),
        ("targets", Json::Int(rec.targets as i64)),
        ("targets_alive", Json::Int(rec.targets_alive as i64)),
        ("delivered_alive", Json::Int(rec.delivered_alive as i64)),
        ("t50", opt_u64(rec.t50)),
        ("t90", opt_u64(rec.t90)),
        ("t_full", opt_u64(rec.t_full)),
        ("repair_rounds", opt_u64(rec.repair_rounds)),
        ("max_awake", Json::Int(rec.max_awake as i64)),
        (
            "mean_awake_bits",
            Json::Int(rec.mean_awake.to_bits() as i64),
        ),
        ("collisions", opt_u64(rec.collisions)),
        ("bound", Json::Int(rec.bound as i64)),
        ("nodes", Json::Int(rec.nodes as i64)),
        ("reconfigs", opt_u64(rec.reconfigs)),
        ("slot_churn", opt_u64(rec.slot_churn)),
    ])
}

fn record_from_json(j: &Json) -> Option<TrialRecord> {
    Some(TrialRecord {
        rounds: get_u64(j, "rounds")?,
        delivered: get_u64(j, "delivered")?,
        targets: get_u64(j, "targets")?,
        targets_alive: get_u64(j, "targets_alive")?,
        delivered_alive: get_u64(j, "delivered_alive")?,
        t50: get_opt_u64(j, "t50")?,
        t90: get_opt_u64(j, "t90")?,
        t_full: get_opt_u64(j, "t_full")?,
        repair_rounds: get_opt_u64(j, "repair_rounds")?,
        max_awake: get_u64(j, "max_awake")?,
        mean_awake: f64::from_bits(get_u64(j, "mean_awake_bits")?),
        collisions: get_opt_u64(j, "collisions")?,
        bound: get_u64(j, "bound")?,
        nodes: get_u64(j, "nodes")?,
        reconfigs: get_opt_u64(j, "reconfigs")?,
        slot_churn: get_opt_u64(j, "slot_churn")?,
    })
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 8);
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crc32(payload).to_be_bytes());
    buf.extend_from_slice(payload);
    buf
}

fn header_payload(fingerprint: u64, trials: usize) -> Vec<u8> {
    obj(vec![
        ("record", Json::Str("header".into())),
        ("schema", Json::Str(JOURNAL_SCHEMA.into())),
        ("fingerprint", Json::Int(fingerprint as i64)),
        ("trials", Json::Int(trials as i64)),
    ])
    .render()
    .into_bytes()
}

fn intent_payload(trial: usize) -> Vec<u8> {
    obj(vec![
        ("record", Json::Str("intent".into())),
        ("trial", Json::Int(trial as i64)),
    ])
    .render()
    .into_bytes()
}

fn commit_payload(trial: usize, rec: &TrialRecord) -> Vec<u8> {
    let data = record_to_json(rec).render();
    let mut digest = Fnv::new();
    digest.write(data.as_bytes());
    let mut out = String::with_capacity(data.len() + 64);
    out.push_str("{\"record\":\"commit\",\"trial\":");
    out.push_str(&trial.to_string());
    out.push_str(",\"digest\":");
    out.push_str(&(digest.finish() as i64).to_string());
    out.push_str(",\"data\":");
    out.push_str(&data);
    out.push('}');
    out.into_bytes()
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Everything a journal file durably records, as recovered by
/// [`read_journal`].
#[derive(Debug, Clone, PartialEq)]
pub struct JournalContents {
    /// Spec fingerprint from the header.
    pub fingerprint: u64,
    /// Expanded trial count from the header.
    pub trials: usize,
    /// Trials with a durable intent record (started).
    pub intents: Vec<usize>,
    /// Trials with a durable commit record, with their results.
    pub commits: Vec<(usize, TrialRecord)>,
    /// Byte offset where the valid prefix ends (= where a resumed
    /// writer continues appending).
    pub valid_len: u64,
    /// Bytes of torn tail discarded after `valid_len`.
    pub torn_bytes: u64,
}

impl JournalContents {
    /// Per-trial committed results, indexed by trial identity — the
    /// prefill the engine uses to skip completed work.
    pub fn completed(&self) -> Vec<Option<TrialRecord>> {
        let mut done: Vec<Option<TrialRecord>> = vec![None; self.trials];
        for (i, rec) in &self.commits {
            done[*i] = Some(rec.clone());
        }
        done
    }

    /// Number of distinct committed trials.
    pub fn committed_count(&self) -> usize {
        self.completed().iter().filter(|r| r.is_some()).count()
    }
}

/// One parsed frame, or the reason the tail is considered torn.
enum Parsed {
    Frame { payload: Json, next_offset: u64 },
    Torn,
}

fn parse_frame(bytes: &[u8], offset: u64) -> Parsed {
    let at = offset as usize;
    let Some(head) = bytes.get(at..at + 8) else {
        return Parsed::Torn; // truncated inside the length/CRC prefix
    };
    let len = u32::from_be_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(head[4..8].try_into().expect("4 bytes"));
    if len as u32 > LEN_LIMIT {
        return Parsed::Torn; // absurd length: a torn or scribbled prefix
    }
    let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
        return Parsed::Torn; // frame extends past EOF
    };
    if crc32(payload) != crc {
        return Parsed::Torn;
    }
    let Ok(text) = std::str::from_utf8(payload) else {
        return Parsed::Torn;
    };
    match parse(text) {
        Ok(doc) => Parsed::Frame {
            payload: doc,
            next_offset: (at + 8 + len) as u64,
        },
        Err(_) => Parsed::Torn,
    }
}

/// Read a journal file, validating the header and every intact record.
///
/// The **tail** may be torn (a crash mid-append): the first frame that
/// fails to frame, checksum, or parse ends the valid prefix, and the
/// bytes from there to EOF are reported as `torn_bytes` — never
/// mis-parsed into records. Semantic damage *before* the tail (digest
/// mismatch, out-of-range trial index) is real corruption and is an
/// error: single-write + fsync appends cannot produce it.
pub fn read_journal(path: &Path) -> Result<JournalContents, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;

    // Header frame: required, and never considered "torn" — a journal
    // without a durable header recorded nothing worth resuming.
    let (header, mut offset) = match parse_frame(&bytes, 0) {
        Parsed::Frame {
            payload,
            next_offset,
        } => (payload, next_offset),
        Parsed::Torn => return Err(JournalError::NoHeader),
    };
    if header.get("record").and_then(Json::as_str) != Some("header") {
        return Err(JournalError::NoHeader);
    }
    let schema = header
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    if schema != JOURNAL_SCHEMA {
        return Err(JournalError::SchemaMismatch(schema));
    }
    let fingerprint = get_u64(&header, "fingerprint").ok_or(JournalError::NoHeader)?;
    let trials = get_u64(&header, "trials").ok_or(JournalError::NoHeader)? as usize;

    let mut intents = Vec::new();
    let mut commits: Vec<(usize, TrialRecord)> = Vec::new();
    while (offset as usize) < bytes.len() {
        let frame_at = offset;
        let doc = match parse_frame(&bytes, frame_at) {
            Parsed::Frame {
                payload,
                next_offset,
            } => {
                offset = next_offset;
                payload
            }
            Parsed::Torn => break, // discard frame_at..EOF
        };
        let corrupt = |reason: &str| JournalError::Corrupt {
            offset: frame_at,
            reason: reason.into(),
        };
        let trial =
            get_u64(&doc, "trial").ok_or_else(|| corrupt("record without trial index"))? as usize;
        if trial >= trials {
            return Err(corrupt(&format!(
                "trial index {trial} out of range ({trials} trials)"
            )));
        }
        match doc.get("record").and_then(Json::as_str) {
            Some("intent") => intents.push(trial),
            Some("commit") => {
                let data = doc
                    .get("data")
                    .ok_or_else(|| corrupt("commit without data"))?;
                let rendered = data.render();
                let mut digest = Fnv::new();
                digest.write(rendered.as_bytes());
                if Some(digest.finish()) != get_u64(&doc, "digest") {
                    return Err(corrupt("commit digest mismatch"));
                }
                let rec = record_from_json(data)
                    .ok_or_else(|| corrupt("commit data is not a trial record"))?;
                commits.push((trial, rec));
            }
            _ => return Err(corrupt("unknown record kind")),
        }
    }

    Ok(JournalContents {
        fingerprint,
        trials,
        intents,
        commits,
        valid_len: offset,
        torn_bytes: bytes.len() as u64 - offset,
    })
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// An open, append-only campaign journal.
///
/// Appends are serialized under a mutex, written with a single
/// `write_all` of the assembled frame, and made durable with
/// `sync_data` before the append returns — the invariant the torn-tail
/// reader depends on. Shared by reference with every engine worker.
pub struct Journal {
    file: Mutex<File>,
    appends: AtomicU64,
    crash_after: Option<u64>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("appends", &self.appends.load(Ordering::Relaxed))
            .field("crash_after", &self.crash_after)
            .finish()
    }
}

/// The crash-injection threshold from [`CRASH_AFTER_ENV`], if set.
pub fn crash_after_from_env() -> Option<u64> {
    std::env::var(CRASH_AFTER_ENV).ok()?.parse().ok()
}

impl Journal {
    /// Create a fresh journal for a campaign with `trials` expanded
    /// trials and the given [`spec_fingerprint`]. Refuses to overwrite
    /// an existing file — a leftover journal is either resumable or
    /// evidence, never something to clobber silently.
    pub fn create(path: &Path, fingerprint: u64, trials: usize) -> Result<Journal, JournalError> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    JournalError::Exists(path.to_path_buf())
                } else {
                    JournalError::Io(e)
                }
            })?;
        let journal = Journal {
            file: Mutex::new(file),
            appends: AtomicU64::new(0),
            crash_after: crash_after_from_env(),
        };
        {
            let mut file = journal.file.lock().expect("journal lock");
            file.write_all(&frame(&header_payload(fingerprint, trials)))?;
            file.sync_data()?;
        }
        Ok(journal)
    }

    /// Open an existing journal for resume: validate it against the
    /// resuming spec, truncate any torn tail, and return the writer
    /// plus the per-trial committed results to prefill.
    ///
    /// Fails with a precise error when the journal belongs to a
    /// different spec or binary ([`JournalError::FingerprintMismatch`])
    /// or when every trial is already committed
    /// ([`JournalError::AlreadyComplete`]).
    pub fn resume(
        path: &Path,
        fingerprint: u64,
        trials: usize,
    ) -> Result<(Journal, Vec<Option<TrialRecord>>), JournalError> {
        let contents = read_journal(path)?;
        if contents.fingerprint != fingerprint {
            return Err(JournalError::FingerprintMismatch {
                expected: fingerprint,
                found: contents.fingerprint,
            });
        }
        if contents.trials != trials {
            return Err(JournalError::TrialCountMismatch {
                expected: trials,
                found: contents.trials,
            });
        }
        let completed = contents.completed();
        if completed.iter().all(Option::is_some) {
            return Err(JournalError::AlreadyComplete { trials });
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(contents.valid_len)?; // drop the torn tail
        file.sync_data()?;
        let mut file = file;
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok((
            Journal {
                file: Mutex::new(file),
                appends: AtomicU64::new(0),
                crash_after: crash_after_from_env(),
            },
            completed,
        ))
    }

    /// Record that a worker is about to execute `trial`.
    pub fn record_intent(&self, trial: usize) -> Result<(), JournalError> {
        self.append(&intent_payload(trial))
    }

    /// Record that `trial` finished with `rec` (the durable "done" mark
    /// resume skips by).
    pub fn record_commit(&self, trial: usize, rec: &TrialRecord) -> Result<(), JournalError> {
        self.append(&commit_payload(trial, rec))
    }

    /// Intent/commit appends made through this writer (the crash
    /// injector's clock).
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    fn append(&self, payload: &[u8]) -> Result<(), JournalError> {
        let buf = frame(payload);
        {
            let mut file = self.file.lock().expect("journal lock");
            file.write_all(&buf)?;
            file.sync_data()?;
        }
        let count = self.appends.fetch_add(1, Ordering::Relaxed) + 1;
        if self.crash_after == Some(count) {
            // Fault injection: die *after* the nth append is durable,
            // without unwinding — exactly the crash model the resume
            // machinery must survive.
            eprintln!("journal: crash injection after append {count}");
            std::process::abort();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, ProtocolSpec};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsnet-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn rec(h: u64) -> TrialRecord {
        TrialRecord {
            rounds: 10 + h % 90,
            delivered: 40 - h % 3,
            targets: 40,
            targets_alive: 39,
            delivered_alive: 39 - h % 3,
            t50: h.is_multiple_of(2).then_some(3 + h % 5),
            t90: Some(8 + h % 5),
            t_full: None,
            repair_rounds: h.is_multiple_of(3).then_some(h % 7),
            max_awake: 5 + h % 20,
            mean_awake: (h % 1000) as f64 / 7.0,
            collisions: (h % 2 == 1).then_some(h % 4),
            bound: 120,
            nodes: 40,
            reconfigs: None,
            slot_churn: h.is_multiple_of(5).then_some(h % 100),
        }
    }

    fn spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new("journal-test");
        spec.protocols = vec![ProtocolSpec::ImprovedCff, ProtocolSpec::Dfo];
        spec.ns = vec![30];
        spec.reps = 2;
        spec
    }

    #[test]
    fn records_roundtrip_exactly() {
        for h in [0, 1, 7, 12345, u64::from(u32::MAX)] {
            let r = rec(h);
            let json = record_to_json(&r);
            assert_eq!(record_from_json(&json), Some(r.clone()), "h={h}");
            // Through the renderer/parser too (the on-disk path).
            let reparsed = parse(&json.render()).expect("valid json");
            assert_eq!(record_from_json(&reparsed), Some(r));
        }
    }

    #[test]
    fn journal_roundtrips_intents_and_commits() {
        let path = tmp("roundtrip.journal");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path, 0xFEED, 4).expect("create");
        j.record_intent(0).unwrap();
        j.record_commit(0, &rec(1)).unwrap();
        j.record_intent(2).unwrap();
        j.record_commit(2, &rec(2)).unwrap();
        j.record_intent(3).unwrap(); // started, not durable-done
        drop(j);
        let c = read_journal(&path).expect("read");
        assert_eq!(c.fingerprint, 0xFEED);
        assert_eq!(c.trials, 4);
        assert_eq!(c.intents, vec![0, 2, 3]);
        assert_eq!(c.commits.len(), 2);
        assert_eq!(c.torn_bytes, 0);
        let done = c.completed();
        assert_eq!(done[0], Some(rec(1)));
        assert!(done[1].is_none());
        assert_eq!(done[2], Some(rec(2)));
        assert!(done[3].is_none());
    }

    #[test]
    fn create_refuses_to_overwrite() {
        let path = tmp("exists.journal");
        let _ = std::fs::remove_file(&path);
        Journal::create(&path, 1, 1).expect("create");
        assert!(matches!(
            Journal::create(&path, 1, 1),
            Err(JournalError::Exists(_))
        ));
    }

    #[test]
    fn torn_tail_is_discarded_not_misparsed() {
        let path = tmp("torn.journal");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path, 7, 4).expect("create");
        j.record_intent(0).unwrap();
        j.record_commit(0, &rec(9)).unwrap();
        j.record_intent(1).unwrap();
        drop(j);
        let full = std::fs::read(&path).expect("read file");
        assert_eq!(read_journal(&path).expect("intact").torn_bytes, 0);
        // Offset of the final frame, by walking the frame chain.
        let tail_start = {
            let mut off = 0usize;
            let mut last = 0usize;
            while off < full.len() {
                last = off;
                let len = u32::from_be_bytes(full[off..off + 4].try_into().unwrap()) as usize;
                off += 8 + len;
            }
            last
        };
        // Truncate at every point from the final frame's start to EOF.
        for cut in tail_start..full.len() {
            std::fs::write(&path, &full[..cut]).expect("truncate");
            let c = read_journal(&path).expect("torn tail tolerated");
            assert_eq!(c.commits.len(), 1, "cut={cut}");
            assert_eq!(c.commits[0].1, rec(9));
        }
        // Flip each byte of the final frame in place.
        for at in tail_start..full.len() {
            let mut bytes = full.clone();
            bytes[at] ^= 0x41;
            std::fs::write(&path, &bytes).expect("corrupt");
            let c = read_journal(&path).expect("corrupt tail tolerated");
            assert_eq!(c.commits.len(), 1, "at={at}");
            assert_eq!(c.commits[0].1, rec(9));
            assert!(c.torn_bytes > 0, "at={at}");
        }
    }

    #[test]
    fn resume_prefills_truncates_and_appends() {
        let path = tmp("resume.journal");
        let _ = std::fs::remove_file(&path);
        let j = Journal::create(&path, 11, 3).expect("create");
        j.record_intent(0).unwrap();
        j.record_commit(0, &rec(4)).unwrap();
        j.record_intent(1).unwrap();
        drop(j);
        // Tear the tail by appending garbage (a half-written frame).
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF, 0xFF, 0x00]).unwrap();
        }
        let (j, completed) = Journal::resume(&path, 11, 3).expect("resume");
        assert_eq!(completed[0], Some(rec(4)));
        assert!(completed[1].is_none() && completed[2].is_none());
        j.record_intent(1).unwrap();
        j.record_commit(1, &rec(5)).unwrap();
        j.record_intent(2).unwrap();
        j.record_commit(2, &rec(6)).unwrap();
        drop(j);
        let c = read_journal(&path).expect("read after resume");
        assert_eq!(c.torn_bytes, 0, "torn tail was truncated away");
        assert_eq!(c.committed_count(), 3);
        // A fully-committed journal refuses a second resume.
        assert!(matches!(
            Journal::resume(&path, 11, 3),
            Err(JournalError::AlreadyComplete { trials: 3 })
        ));
    }

    #[test]
    fn resume_refuses_wrong_fingerprint_and_count() {
        let path = tmp("fingerprint.journal");
        let _ = std::fs::remove_file(&path);
        Journal::create(&path, 42, 2).expect("create");
        assert!(matches!(
            Journal::resume(&path, 43, 2),
            Err(JournalError::FingerprintMismatch {
                expected: 43,
                found: 42
            })
        ));
        assert!(matches!(
            Journal::resume(&path, 42, 5),
            Err(JournalError::TrialCountMismatch {
                expected: 5,
                found: 2
            })
        ));
    }

    #[test]
    fn fingerprint_binds_to_the_expanded_spec() {
        let base = spec_fingerprint(&spec());
        assert_eq!(base, spec_fingerprint(&spec()), "deterministic");
        let mut mutated = spec();
        mutated.ns = vec![31];
        assert_ne!(base, spec_fingerprint(&mutated));
        let mut mutated = spec();
        mutated.reps = 3;
        assert_ne!(base, spec_fingerprint(&mutated));
        let mut mutated = spec();
        mutated.base_seed += 1;
        assert_ne!(base, spec_fingerprint(&mutated));
        let mut mutated = spec();
        mutated.protocols = vec![ProtocolSpec::Dfo, ProtocolSpec::ImprovedCff];
        assert_ne!(base, spec_fingerprint(&mutated), "axis order matters");
        let mut mutated = spec();
        mutated.record_trace = false;
        assert_ne!(base, spec_fingerprint(&mutated));
    }

    #[test]
    fn non_journal_files_are_rejected() {
        let path = tmp("garbage.journal");
        std::fs::write(&path, b"this is not a journal").unwrap();
        assert!(matches!(read_journal(&path), Err(JournalError::NoHeader)));
        std::fs::write(&path, frame(b"{\"record\":\"intent\",\"trial\":0}")).unwrap();
        assert!(matches!(read_journal(&path), Err(JournalError::NoHeader)));
    }

    #[test]
    fn error_messages_are_actionable() {
        let msg = JournalError::FingerprintMismatch {
            expected: 1,
            found: 2,
        }
        .to_string();
        assert!(msg.contains("fingerprint mismatch"), "{msg}");
        assert!(msg.contains("spec flags or the dsnet binary"), "{msg}");
        let msg = JournalError::AlreadyComplete { trials: 8 }.to_string();
        assert!(msg.contains("all 8 trials"), "{msg}");
        assert!(msg.contains("nothing to resume"), "{msg}");
    }
}
