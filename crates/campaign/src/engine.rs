//! The deterministic parallel execution engine.

use crate::journal::Journal;
use crate::sink::CampaignSink;
use crate::spec::{
    repair_label, CampaignSpec, ChurnTemplate, FailureTemplate, LossSpec, MobilitySpec,
    ProtocolSpec, Trial, TrialRecord,
};
use dsnet_metrics::{Distribution, Summary};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Executes one trial. Implementations must be pure functions of the
/// trial (all randomness drawn from the trial's seeds) — the engine's
/// determinism contract depends on it.
pub trait TrialRunner: Sync {
    /// Run `trial` to completion and condense its outcome.
    fn run_trial(&self, trial: &Trial) -> TrialRecord;
}

impl<F: Fn(&Trial) -> TrialRecord + Sync> TrialRunner for F {
    fn run_trial(&self, trial: &Trial) -> TrialRecord {
        self(trial)
    }
}

/// Live progress handed to the optional observer after every trial.
#[derive(Debug, Clone, Copy)]
pub struct Progress<'a> {
    /// Trials finished so far (including this one).
    pub done: u64,
    /// Total trials in the campaign.
    pub total: u64,
    /// The trial that just finished.
    pub trial: &'a Trial,
    /// Its condensed record.
    pub record: &'a TrialRecord,
}

/// Deterministic per-cell aggregate over the cell's repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Protocol axis value.
    pub protocol: ProtocolSpec,
    /// Channel-count axis value.
    pub channels: u8,
    /// Failure-template axis value.
    pub failure: FailureTemplate,
    /// Churn-template axis value.
    pub churn: ChurnTemplate,
    /// Channel-loss axis value.
    pub loss: LossSpec,
    /// Repair axis value.
    pub repair: bool,
    /// Mobility axis value.
    pub mobility: MobilitySpec,
    /// Network-size axis value.
    pub n: usize,
    /// Repetitions aggregated.
    pub trials: usize,
    /// Repetitions that delivered to every target.
    pub completed: usize,
    /// Broadcast rounds (moments).
    pub rounds: Summary,
    /// Median broadcast rounds.
    pub rounds_p50: f64,
    /// 90th-percentile broadcast rounds.
    pub rounds_p90: f64,
    /// Delivery ratio per repetition.
    pub delivery: Summary,
    /// Delivery ratio over the targets alive at the end of each run.
    pub delivery_alive: Summary,
    /// Repetitions that repaired at least one failure.
    pub repaired: usize,
    /// Time-to-repair over the repetitions that repaired; `None` when
    /// none did.
    pub repair_rounds: Option<Summary>,
    /// Worst-node awake rounds.
    pub max_awake: Summary,
    /// Mean awake rounds.
    pub mean_awake: Summary,
    /// Analytic round bound.
    pub bound: Summary,
    /// Total receiver-side collisions; `None` if any repetition ran
    /// without a trace (partial sums would misrepresent the cell).
    pub collisions: Option<u64>,
    /// Structure reconfigurations during the mobility phase, over the
    /// repetitions that moved; `None` for static cells.
    pub reconfigs: Option<Summary>,
    /// Slot-assignment churn during the mobility phase, over the
    /// repetitions that moved; `None` for static cells.
    pub slot_churn: Option<Summary>,
}

impl CellSummary {
    /// Stable one-line label of the cell's axes.
    pub fn label(&self) -> String {
        format!(
            "{} k={} fail={} churn={} loss={} repair={} mob={} n={}",
            self.protocol.name(),
            self.channels,
            self.failure.label(),
            self.churn.label(),
            self.loss.label(),
            repair_label(self.repair),
            self.mobility.label(),
            self.n
        )
    }
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The spec that was run.
    pub spec: CampaignSpec,
    /// The expanded trial grid, in identity order.
    pub trials: Vec<Trial>,
    /// One record per trial, same order.
    pub records: Vec<TrialRecord>,
    /// Per-cell aggregates, in first-occurrence order of the grid.
    pub cells: Vec<CellSummary>,
    /// Wall-clock execution time (not part of the artifacts).
    pub elapsed: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

impl CampaignResult {
    /// Iterate `(trial, record)` pairs matching a predicate.
    pub fn select<'a>(
        &'a self,
        mut pred: impl FnMut(&Trial) -> bool + 'a,
    ) -> impl Iterator<Item = (&'a Trial, &'a TrialRecord)> {
        self.trials
            .iter()
            .zip(&self.records)
            .filter(move |(t, _)| pred(t))
    }

    /// The cell matching the given axes, if present.
    #[allow(clippy::too_many_arguments)]
    pub fn cell(
        &self,
        protocol: ProtocolSpec,
        channels: u8,
        failure: FailureTemplate,
        churn: ChurnTemplate,
        loss: LossSpec,
        repair: bool,
        mobility: MobilitySpec,
        n: usize,
    ) -> Option<&CellSummary> {
        self.cells.iter().find(|c| {
            c.protocol == protocol
                && c.channels == channels
                && c.failure == failure
                && c.churn == churn
                && c.loss == loss
                && c.repair == repair
                && c.mobility == mobility
                && c.n == n
        })
    }
}

/// Map each trial to its cell index; cells are numbered in first
/// occurrence order of the expanded grid (a pure function of the spec).
fn cell_indices(trials: &[Trial]) -> (Vec<usize>, Vec<usize>) {
    let mut cell_of_trial = Vec::with_capacity(trials.len());
    let mut cell_reps: Vec<usize> = Vec::new(); // index of first trial per cell
    for t in trials {
        match cell_reps.iter().position(|&r| trials[r].same_cell(t)) {
            Some(c) => cell_of_trial.push(c),
            None => {
                cell_of_trial.push(cell_reps.len());
                cell_reps.push(t.index);
            }
        }
    }
    (cell_of_trial, cell_reps)
}

/// Execute `spec` on `threads` workers (`0` = all available cores) and
/// aggregate the results.
///
/// Workers claim trials off a shared atomic cursor, publish each record
/// into its trial's slot and stream it into the lock-free sink (feeding
/// `on_progress`). Aggregation folds the slots in trial-index order after
/// the pool joins — see the crate docs for why this makes the result
/// independent of `threads`.
///
/// # Panics
///
/// Propagates panics from the trial runner (a failed trial fails the
/// campaign loudly rather than producing a partial artifact).
pub fn run_campaign(
    spec: &CampaignSpec,
    runner: &dyn TrialRunner,
    threads: usize,
    on_progress: Option<&(dyn Fn(Progress<'_>) + Sync)>,
) -> CampaignResult {
    run_campaign_resumable(spec, runner, threads, on_progress, None, None)
}

/// [`run_campaign`] with crash-consistency hooks: an optional journal
/// and an optional set of already-committed results to skip.
///
/// * `journal` — every worker records an `intent` frame before
///   executing a trial and a `commit` frame (embedding the finished
///   [`TrialRecord`]) after, each durable before the next step. A
///   journal append failure fails the campaign loudly: continuing
///   would silently forfeit crash consistency.
/// * `completed` — per-trial results recovered by
///   [`Journal::resume`](crate::journal::Journal::resume). Trials with
///   a `Some` entry are folded into the artifacts *without being
///   re-run or re-journaled*; everything else executes normally.
///
/// Because trial identity, seeding, and the aggregation fold are all
/// independent of scheduling, a resumed campaign's artifacts are
/// byte-identical to an uninterrupted run's — the property the
/// crash-injection suite verifies end to end.
pub fn run_campaign_resumable(
    spec: &CampaignSpec,
    runner: &dyn TrialRunner,
    threads: usize,
    on_progress: Option<&(dyn Fn(Progress<'_>) + Sync)>,
    journal: Option<&Journal>,
    completed: Option<Vec<Option<TrialRecord>>>,
) -> CampaignResult {
    let started = Instant::now();
    let trials = spec.expand();
    let (cell_of_trial, cell_reps) = cell_indices(&trials);
    let sink = CampaignSink::new(cell_reps.len());
    let slots: Vec<OnceLock<TrialRecord>> = (0..trials.len()).map(|_| OnceLock::new()).collect();

    // Prefill journaled results before any worker starts: their slots
    // are set (workers skip them) and the sink already counts them, so
    // progress reporting sees `done` start at the resume point.
    if let Some(completed) = &completed {
        assert_eq!(
            completed.len(),
            trials.len(),
            "completed prefill must cover the expanded grid"
        );
        for (i, rec) in completed.iter().enumerate() {
            if let Some(rec) = rec {
                sink.record(cell_of_trial[i], rec);
                slots[i]
                    .set(rec.clone())
                    .unwrap_or_else(|_| unreachable!("prefill slot {i} set twice"));
            }
        }
    }

    let remaining = slots.iter().filter(|s| s.get().is_none()).count();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
    .min(remaining.max(1));

    let cursor = AtomicUsize::new(0);
    let total = trials.len() as u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(trial) = trials.get(i) else { break };
                if slots[i].get().is_some() {
                    continue; // journaled as done before this run
                }
                if let Some(j) = journal {
                    j.record_intent(i)
                        .unwrap_or_else(|e| panic!("journal intent for trial {i}: {e}"));
                }
                let record = runner.run_trial(trial);
                if let Some(j) = journal {
                    j.record_commit(i, &record)
                        .unwrap_or_else(|e| panic!("journal commit for trial {i}: {e}"));
                }
                let done = sink.record(cell_of_trial[i], &record);
                if let Some(observe) = on_progress {
                    observe(Progress {
                        done,
                        total,
                        trial,
                        record: &record,
                    });
                }
                slots[i]
                    .set(record)
                    .unwrap_or_else(|_| unreachable!("trial {i} claimed twice"));
            });
        }
    });

    let records: Vec<TrialRecord> = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.into_inner()
                .unwrap_or_else(|| panic!("trial {i} never ran"))
        })
        .collect();

    // Deterministic fold: per cell, gather its repetitions in trial order.
    let cells = cell_reps
        .iter()
        .map(|&rep0| {
            let t0 = &trials[rep0];
            let members: Vec<&TrialRecord> = trials
                .iter()
                .zip(&records)
                .filter(|(t, _)| t.same_cell(t0))
                .map(|(_, r)| r)
                .collect();
            let rounds = Distribution::of_u64(members.iter().map(|r| r.rounds));
            let repairs: Vec<u64> = members.iter().filter_map(|r| r.repair_rounds).collect();
            let reconfigs: Vec<u64> = members.iter().filter_map(|r| r.reconfigs).collect();
            let slot_churn: Vec<u64> = members.iter().filter_map(|r| r.slot_churn).collect();
            CellSummary {
                protocol: t0.protocol,
                channels: t0.channels,
                failure: t0.failure,
                churn: t0.churn,
                loss: t0.loss,
                repair: t0.repair,
                mobility: t0.mobility,
                n: t0.n,
                trials: members.len(),
                completed: members.iter().filter(|r| r.completed()).count(),
                rounds_p50: rounds.median(),
                rounds_p90: rounds.percentile(90.0),
                rounds: rounds.summary(),
                delivery: Summary::of(members.iter().map(|r| r.delivery_ratio())),
                delivery_alive: Summary::of(members.iter().map(|r| r.delivery_ratio_alive())),
                repaired: repairs.len(),
                repair_rounds: if repairs.is_empty() {
                    None
                } else {
                    Some(Summary::of_u64(repairs.iter().copied()))
                },
                max_awake: Summary::of_u64(members.iter().map(|r| r.max_awake)),
                mean_awake: Summary::of(members.iter().map(|r| r.mean_awake)),
                bound: Summary::of_u64(members.iter().map(|r| r.bound)),
                collisions: members.iter().map(|r| r.collisions).sum::<Option<u64>>(),
                reconfigs: if reconfigs.is_empty() {
                    None
                } else {
                    Some(Summary::of_u64(reconfigs.iter().copied()))
                },
                slot_churn: if slot_churn.is_empty() {
                    None
                } else {
                    Some(Summary::of_u64(slot_churn.iter().copied()))
                },
            }
        })
        .collect();

    CampaignResult {
        spec: spec.clone(),
        trials,
        records,
        cells,
        elapsed: started.elapsed(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A synthetic runner: outcome is a pure hash of the trial seeds, so
    /// any scheduling difference would show up as a changed record.
    fn synthetic(trial: &Trial) -> TrialRecord {
        let h = trial.scenario_seed ^ trial.stream_seed.rotate_left(17);
        TrialRecord {
            rounds: 10 + h % 90,
            delivered: trial.n as u64 - h % 3,
            targets: trial.n as u64,
            targets_alive: trial.n as u64 - 1,
            delivered_alive: trial.n as u64 - 1 - h % 3,
            t50: Some(3 + h % 5),
            t90: Some(8 + h % 5),
            t_full: None,
            repair_rounds: if trial.repair { Some(4 + h % 7) } else { None },
            max_awake: 5 + h % 20,
            mean_awake: (h % 1000) as f64 / 100.0,
            collisions: if trial.record_trace {
                Some(h % 4)
            } else {
                None
            },
            bound: 120,
            nodes: trial.n as u64,
            reconfigs: if trial.mobility.is_none() {
                None
            } else {
                Some(h % 40)
            },
            slot_churn: if trial.mobility.is_none() {
                None
            } else {
                Some(h % 100)
            },
        }
    }

    fn spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new("engine-test");
        spec.protocols = vec![ProtocolSpec::ImprovedCff, ProtocolSpec::Dfo];
        spec.ns = vec![30, 60];
        spec.reps = 4;
        spec
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let spec = spec();
        let serial = run_campaign(&spec, &synthetic, 1, None);
        for threads in [2, 4, 8] {
            let parallel = run_campaign(&spec, &synthetic, threads, None);
            assert_eq!(serial.records, parallel.records);
            assert_eq!(serial.cells, parallel.cells);
            assert_eq!(serial.trials, parallel.trials);
        }
    }

    #[test]
    fn every_trial_runs_exactly_once_under_contention() {
        let spec = spec();
        let calls = AtomicU64::new(0);
        let runner = |t: &Trial| {
            calls.fetch_add(1, Ordering::Relaxed);
            synthetic(t)
        };
        let result = run_campaign(&spec, &runner, 8, None);
        assert_eq!(calls.load(Ordering::Relaxed), spec.trial_count() as u64);
        assert_eq!(result.records.len(), spec.trial_count());
    }

    #[test]
    fn cells_group_reps_and_keep_grid_order() {
        let result = run_campaign(&spec(), &synthetic, 3, None);
        assert_eq!(result.cells.len(), 4); // 2 protocols × 2 sizes
        for cell in &result.cells {
            assert_eq!(cell.trials, 4);
        }
        assert_eq!(result.cells[0].protocol, ProtocolSpec::ImprovedCff);
        assert_eq!(result.cells[0].n, 30);
        assert_eq!(result.cells[1].n, 60);
        assert_eq!(result.cells[2].protocol, ProtocolSpec::Dfo);
        // Percentiles bracket the mean's support.
        let c = &result.cells[0];
        assert!(c.rounds.min <= c.rounds_p50 && c.rounds_p50 <= c.rounds_p90);
        assert!(c.rounds_p90 <= c.rounds.max);
    }

    #[test]
    fn progress_reports_every_trial() {
        let spec = spec();
        let seen = AtomicU64::new(0);
        let last = AtomicU64::new(0);
        run_campaign(
            &spec,
            &synthetic,
            4,
            Some(&|p: Progress<'_>| {
                seen.fetch_add(1, Ordering::Relaxed);
                last.fetch_max(p.done, Ordering::Relaxed);
                assert_eq!(p.total, spec.trial_count() as u64);
            }),
        );
        assert_eq!(seen.load(Ordering::Relaxed), spec.trial_count() as u64);
        assert_eq!(last.load(Ordering::Relaxed), spec.trial_count() as u64);
    }

    #[test]
    fn collisions_poisoned_by_one_untraced_rep() {
        let spec = spec();
        // Trace off for exactly one rep of each cell.
        let runner = |t: &Trial| {
            let mut r = synthetic(t);
            if t.rep == 1 {
                r.collisions = None;
            }
            r
        };
        let result = run_campaign(&spec, &runner, 2, None);
        for cell in &result.cells {
            assert_eq!(cell.collisions, None);
        }
    }

    #[test]
    fn select_filters_pairs() {
        let result = run_campaign(&spec(), &synthetic, 2, None);
        let dfo: Vec<_> = result.select(|t| t.protocol == ProtocolSpec::Dfo).collect();
        assert_eq!(dfo.len(), 8);
        assert!(dfo.iter().all(|(t, _)| t.protocol == ProtocolSpec::Dfo));
        let cell = result
            .cell(
                ProtocolSpec::Dfo,
                1,
                FailureTemplate::None,
                ChurnTemplate::default(),
                LossSpec::none(),
                false,
                MobilitySpec::None,
                30,
            )
            .expect("cell exists");
        assert_eq!(cell.trials, 4);
    }

    #[test]
    fn mobility_metrics_aggregate_only_over_mobile_cells() {
        let mut spec = spec();
        spec.mobility = vec![
            MobilitySpec::None,
            MobilitySpec::random_waypoint(0.05, 10, 2),
        ];
        let result = run_campaign(&spec, &synthetic, 2, None);
        assert_eq!(result.cells.len(), 8);
        for cell in &result.cells {
            if cell.mobility.is_none() {
                assert_eq!(cell.reconfigs, None);
                assert_eq!(cell.slot_churn, None);
            } else {
                assert!(cell.reconfigs.is_some());
                assert!(cell.slot_churn.is_some());
            }
        }
    }

    #[test]
    fn resumed_runs_reproduce_uninterrupted_results() {
        use crate::journal::{read_journal, spec_fingerprint, Journal};
        let spec = spec();
        let baseline = run_campaign(&spec, &synthetic, 2, None);
        let path = std::env::temp_dir().join(format!(
            "dsnet-engine-resume-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let fp = spec_fingerprint(&spec);
        let journal = Journal::create(&path, fp, spec.trial_count()).expect("create journal");
        let journaled = run_campaign_resumable(&spec, &synthetic, 2, None, Some(&journal), None);
        drop(journal);
        assert_eq!(journaled.records, baseline.records);
        let contents = read_journal(&path).expect("read journal");
        assert_eq!(contents.committed_count(), spec.trial_count());
        // Simulate crashes at several points by forgetting a suffix of
        // the commits, then resume: records and cells must be identical
        // to the uninterrupted run at multiple thread counts.
        for keep in [0, 1, spec.trial_count() / 2, spec.trial_count() - 1] {
            let mut completed = contents.completed();
            for slot in completed.iter_mut().skip(keep) {
                *slot = None;
            }
            for threads in [1, 3] {
                let resumed = run_campaign_resumable(
                    &spec,
                    &synthetic,
                    threads,
                    None,
                    None,
                    Some(completed.clone()),
                );
                assert_eq!(resumed.records, baseline.records, "keep={keep}");
                assert_eq!(resumed.cells, baseline.cells, "keep={keep}");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prefilled_trials_never_rerun() {
        let spec = spec();
        let total = spec.trial_count();
        let full = run_campaign(&spec, &synthetic, 2, None);
        let mut completed: Vec<Option<TrialRecord>> =
            full.records.iter().cloned().map(Some).collect();
        for slot in completed.iter_mut().skip(total / 2) {
            *slot = None;
        }
        let calls = AtomicU64::new(0);
        let runner = |t: &Trial| {
            calls.fetch_add(1, Ordering::Relaxed);
            synthetic(t)
        };
        let resumed = run_campaign_resumable(&spec, &runner, 4, None, None, Some(completed));
        assert_eq!(
            calls.load(Ordering::Relaxed) as usize,
            total - total / 2,
            "only the non-journaled tail executes"
        );
        assert_eq!(resumed.records, full.records);
    }

    #[test]
    fn repair_rounds_aggregate_only_over_repairing_reps() {
        let mut spec = spec();
        spec.repair = vec![false, true];
        let result = run_campaign(&spec, &synthetic, 2, None);
        for cell in &result.cells {
            if cell.repair {
                assert_eq!(cell.repaired, cell.trials);
                assert!(cell.repair_rounds.is_some());
            } else {
                assert_eq!(cell.repaired, 0);
                assert_eq!(cell.repair_rounds, None);
            }
        }
    }
}
