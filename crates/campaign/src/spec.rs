//! Campaign specifications and their expansion into trial grids.

use dsnet_geom::rng::derive_seed;
use std::fmt;

/// Which broadcast protocol a trial runs.
///
/// Mirrors `dsnet::Protocol`; duplicated here so the campaign engine has
/// no dependency on the facade crate (which depends back on this one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolSpec {
    /// Depth-first-order Eulerian-tour baseline of \[19\].
    Dfo,
    /// Algorithm 1: basic collision-free flooding.
    BasicCff,
    /// Algorithm 2: the improved two-phase CFF.
    ImprovedCff,
    /// Bounded-retry reliable CFF (Algorithm 1 + NACK/retransmit epochs).
    ReliableCff,
}

impl ProtocolSpec {
    /// Short stable name used in CLI arguments and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolSpec::Dfo => "dfo",
            ProtocolSpec::BasicCff => "cff1",
            ProtocolSpec::ImprovedCff => "cff2",
            ProtocolSpec::ReliableCff => "rcff",
        }
    }

    /// Parse a CLI name (the inverse of [`ProtocolSpec::name`]).
    pub fn parse(s: &str) -> Option<ProtocolSpec> {
        match s {
            "dfo" => Some(ProtocolSpec::Dfo),
            "cff1" | "basic" => Some(ProtocolSpec::BasicCff),
            "cff2" | "improved" | "cff" => Some(ProtocolSpec::ImprovedCff),
            "rcff" | "reliable" => Some(ProtocolSpec::ReliableCff),
            _ => None,
        }
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative fail-stop schedule, instantiated per trial by the trial
/// runner (victim selection uses the trial's private RNG stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureTemplate {
    /// No failures.
    None,
    /// Kill `count` random non-root backbone nodes at `round`.
    Backbone {
        /// Victims drawn (without replacement) from the backbone.
        count: usize,
        /// Fail-stop round (1-based; round 1 = before any transmission).
        round: u64,
    },
    /// Kill `count` random non-root nodes of any status at `round`.
    Random {
        /// Victims drawn (without replacement) from all non-root nodes.
        count: usize,
        /// Fail-stop round (1-based).
        round: u64,
    },
    /// Take `count` random non-root backbone nodes offline at `round` for
    /// `duration` rounds (a transient outage — they come back).
    BackboneOutage {
        /// Victims drawn (without replacement) from the backbone.
        count: usize,
        /// Outage start round (1-based).
        round: u64,
        /// Rounds offline before the node revives.
        duration: u64,
    },
    /// Take `count` random non-root nodes of any status offline at
    /// `round` for `duration` rounds.
    RandomOutage {
        /// Victims drawn (without replacement) from all non-root nodes.
        count: usize,
        /// Outage start round (1-based).
        round: u64,
        /// Rounds offline before the node revives.
        duration: u64,
    },
}

impl FailureTemplate {
    /// Short stable label used in artifacts and CLI arguments
    /// (`none`, `bb<count>@<round>`, `any<count>@<round>`; outage
    /// variants append `+<duration>`, e.g. `bb3@1+10`).
    pub fn label(&self) -> String {
        match self {
            FailureTemplate::None => "none".into(),
            FailureTemplate::Backbone { count, round } => format!("bb{count}@{round}"),
            FailureTemplate::Random { count, round } => format!("any{count}@{round}"),
            FailureTemplate::BackboneOutage {
                count,
                round,
                duration,
            } => format!("bb{count}@{round}+{duration}"),
            FailureTemplate::RandomOutage {
                count,
                round,
                duration,
            } => format!("any{count}@{round}+{duration}"),
        }
    }

    /// Whether the victims come back (outage) rather than fail-stop.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FailureTemplate::BackboneOutage { .. } | FailureTemplate::RandomOutage { .. }
        )
    }

    /// Parse a label (the inverse of [`FailureTemplate::label`]).
    pub fn parse(s: &str) -> Option<FailureTemplate> {
        if s == "none" {
            return Some(FailureTemplate::None);
        }
        let (kind, rest) = if let Some(rest) = s.strip_prefix("bb") {
            ("bb", rest)
        } else if let Some(rest) = s.strip_prefix("any") {
            ("any", rest)
        } else {
            return None;
        };
        let (count, rest) = rest.split_once('@')?;
        let count = count.parse().ok()?;
        match rest.split_once('+') {
            Some((round, duration)) => {
                let round = round.parse().ok()?;
                let duration = duration.parse().ok()?;
                Some(match kind {
                    "bb" => FailureTemplate::BackboneOutage {
                        count,
                        round,
                        duration,
                    },
                    _ => FailureTemplate::RandomOutage {
                        count,
                        round,
                        duration,
                    },
                })
            }
            None => {
                let round = rest.parse().ok()?;
                Some(match kind {
                    "bb" => FailureTemplate::Backbone { count, round },
                    _ => FailureTemplate::Random { count, round },
                })
            }
        }
    }
}

/// Per-link Bernoulli loss axis value, quantised to parts-per-million so
/// it can be hashed and compared exactly (mirrors
/// `dsnet_radio::LossModel`'s quantisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LossSpec {
    /// Drop probability in parts per million.
    pub ppm: u32,
}

impl LossSpec {
    /// The lossless channel.
    pub fn none() -> LossSpec {
        LossSpec::default()
    }

    /// Quantise a probability in `[0, 1]`.
    pub fn from_probability(p: f64) -> LossSpec {
        assert!((0.0..=1.0).contains(&p), "loss probability {p} ∉ [0, 1]");
        LossSpec {
            ppm: (p * 1_000_000.0).round() as u32,
        }
    }

    /// The drop probability this spec encodes.
    pub fn probability(self) -> f64 {
        self.ppm as f64 / 1_000_000.0
    }

    /// Whether this is the lossless channel.
    pub fn is_none(self) -> bool {
        self.ppm == 0
    }

    /// Short stable label (`none` or `p<probability>`, e.g. `p0.05`).
    pub fn label(self) -> String {
        if self.is_none() {
            "none".into()
        } else {
            format!("p{}", self.probability())
        }
    }

    /// Parse a label (the inverse of [`LossSpec::label`]).
    pub fn parse(s: &str) -> Option<LossSpec> {
        if s == "none" {
            return Some(LossSpec::none());
        }
        let p: f64 = s.strip_prefix('p')?.parse().ok()?;
        if (0.0..=1.0).contains(&p) {
            Some(LossSpec::from_probability(p))
        } else {
            None
        }
    }
}

/// Mobility axis value: which trajectory model moves the nodes (with the
/// structure maintained incrementally) before the measured broadcast.
/// Speeds are quantised to milli-units-per-epoch so the spec can be
/// hashed and compared exactly (mirrors [`LossSpec`]'s ppm quantisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MobilitySpec {
    /// Static nodes (the non-mobile campaign).
    #[default]
    None,
    /// Random-waypoint motion: uniform waypoints, trip speeds uniform in
    /// `[0.5·speed, 1.5·speed]`, pausing on arrival.
    RandomWaypoint {
        /// Template speed in milli-units per epoch.
        speed_milli: u32,
        /// Pause epochs after reaching a waypoint.
        pause: u32,
        /// Epochs of motion before the broadcast.
        epochs: u32,
    },
    /// Gauss-Markov motion: AR(1) velocity with fixed memory 0.75.
    GaussMarkov {
        /// RMS per-axis speed in milli-units per epoch.
        speed_milli: u32,
        /// Epochs of motion before the broadcast.
        epochs: u32,
    },
}

impl MobilitySpec {
    /// The static (non-mobile) axis value.
    pub fn none() -> MobilitySpec {
        MobilitySpec::None
    }

    /// Random-waypoint motion; `speed` is quantised to milli-units.
    pub fn random_waypoint(speed: f64, epochs: u32, pause: u32) -> MobilitySpec {
        assert!(speed > 0.0, "mobility speed must be positive, got {speed}");
        MobilitySpec::RandomWaypoint {
            speed_milli: (speed * 1000.0).round() as u32,
            pause,
            epochs,
        }
    }

    /// Gauss-Markov motion; `speed` is quantised to milli-units.
    pub fn gauss_markov(speed: f64, epochs: u32) -> MobilitySpec {
        assert!(speed > 0.0, "mobility speed must be positive, got {speed}");
        MobilitySpec::GaussMarkov {
            speed_milli: (speed * 1000.0).round() as u32,
            epochs,
        }
    }

    /// Whether the nodes stay put.
    pub fn is_none(self) -> bool {
        self == MobilitySpec::None
    }

    /// The speed in units per epoch (0 for the static value).
    pub fn speed(self) -> f64 {
        match self {
            MobilitySpec::None => 0.0,
            MobilitySpec::RandomWaypoint { speed_milli, .. }
            | MobilitySpec::GaussMarkov { speed_milli, .. } => speed_milli as f64 / 1000.0,
        }
    }

    /// Motion epochs before the broadcast (0 for the static value).
    pub fn epochs(self) -> u32 {
        match self {
            MobilitySpec::None => 0,
            MobilitySpec::RandomWaypoint { epochs, .. }
            | MobilitySpec::GaussMarkov { epochs, .. } => epochs,
        }
    }

    /// Short stable label (`none`, `rwp<speed>x<epochs>p<pause>`, or
    /// `gm<speed>x<epochs>`, e.g. `rwp0.05x20p2`).
    pub fn label(self) -> String {
        match self {
            MobilitySpec::None => "none".into(),
            MobilitySpec::RandomWaypoint { pause, epochs, .. } => {
                format!("rwp{}x{epochs}p{pause}", self.speed())
            }
            MobilitySpec::GaussMarkov { epochs, .. } => format!("gm{}x{epochs}", self.speed()),
        }
    }

    /// Parse a label (the inverse of [`MobilitySpec::label`]).
    pub fn parse(s: &str) -> Option<MobilitySpec> {
        if s == "none" {
            return Some(MobilitySpec::None);
        }
        if let Some(rest) = s.strip_prefix("rwp") {
            let (speed, rest) = rest.split_once('x')?;
            let (epochs, pause) = rest.split_once('p')?;
            let speed: f64 = speed.parse().ok()?;
            if speed <= 0.0 {
                return None;
            }
            return Some(MobilitySpec::random_waypoint(
                speed,
                epochs.parse().ok()?,
                pause.parse().ok()?,
            ));
        }
        if let Some(rest) = s.strip_prefix("gm") {
            let (speed, epochs) = rest.split_once('x')?;
            let speed: f64 = speed.parse().ok()?;
            if speed <= 0.0 {
                return None;
            }
            return Some(MobilitySpec::gauss_markov(speed, epochs.parse().ok()?));
        }
        None
    }
}

/// Label for the repair axis (`on` / `off`).
pub fn repair_label(repair: bool) -> &'static str {
    if repair {
        "on"
    } else {
        "off"
    }
}

/// Parse a repair-axis label (the inverse of [`repair_label`]).
pub fn parse_repair(s: &str) -> Option<bool> {
    match s {
        "on" => Some(true),
        "off" => Some(false),
        _ => None,
    }
}

/// A declarative churn schedule applied to the network *before* the
/// broadcast: `leaves` random non-sink departures followed by `joins`
/// arrivals placed in range of surviving nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ChurnTemplate {
    /// Nodes joining before the broadcast.
    pub joins: usize,
    /// Nodes leaving before the broadcast.
    pub leaves: usize,
}

impl ChurnTemplate {
    /// Whether no churn is applied.
    pub fn is_none(&self) -> bool {
        self.joins == 0 && self.leaves == 0
    }

    /// Short stable label (`none` or `j<joins>l<leaves>`).
    pub fn label(&self) -> String {
        if self.is_none() {
            "none".into()
        } else {
            format!("j{}l{}", self.joins, self.leaves)
        }
    }

    /// Parse a label (the inverse of [`ChurnTemplate::label`]).
    pub fn parse(s: &str) -> Option<ChurnTemplate> {
        if s == "none" {
            return Some(ChurnTemplate::default());
        }
        let rest = s.strip_prefix('j')?;
        let (joins, leaves) = rest.split_once('l')?;
        Some(ChurnTemplate {
            joins: joins.parse().ok()?,
            leaves: leaves.parse().ok()?,
        })
    }
}

/// A declarative experiment campaign: the cross product of every axis
/// below, repeated `reps` times per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name, recorded in artifacts.
    pub name: String,
    /// Square field side for the unit-disk deployment.
    pub field_side: f64,
    /// Network sizes swept.
    pub ns: Vec<usize>,
    /// Seeded repetitions per cell.
    pub reps: u64,
    /// Master seed; every trial seed derives from it.
    pub base_seed: u64,
    /// Protocols compared.
    pub protocols: Vec<ProtocolSpec>,
    /// Channel counts swept.
    pub channels: Vec<u8>,
    /// Failure templates swept.
    pub failures: Vec<FailureTemplate>,
    /// Churn templates swept.
    pub churn: Vec<ChurnTemplate>,
    /// Channel-loss levels swept.
    pub losses: Vec<LossSpec>,
    /// Repair on/off values swept (detection-and-repair of fail-stop
    /// victims before the measured broadcast).
    pub repair: Vec<bool>,
    /// Mobility templates swept (motion with incremental structure
    /// maintenance before the measured broadcast).
    pub mobility: Vec<MobilitySpec>,
    /// Retry budget for the reliable CFF (scalar, not an axis).
    pub max_retries: u32,
    /// Record event traces (collision counts become available).
    pub record_trace: bool,
}

impl CampaignSpec {
    /// A single-axis campaign skeleton: Improved CFF, one channel, no
    /// failures, no churn, on the paper's 10×10 field with seed 2007.
    pub fn new(name: impl Into<String>) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            field_side: 10.0,
            ns: vec![120],
            reps: 3,
            base_seed: 2007,
            protocols: vec![ProtocolSpec::ImprovedCff],
            channels: vec![1],
            failures: vec![FailureTemplate::None],
            churn: vec![ChurnTemplate::default()],
            losses: vec![LossSpec::none()],
            repair: vec![false],
            mobility: vec![MobilitySpec::None],
            max_retries: 2,
            record_trace: true,
        }
    }

    /// Number of trials the grid expands to.
    pub fn trial_count(&self) -> usize {
        self.protocols.len()
            * self.channels.len()
            * self.failures.len()
            * self.churn.len()
            * self.losses.len()
            * self.repair.len()
            * self.mobility.len()
            * self.ns.len()
            * self.reps as usize
    }

    /// Expand the grid into its trial list.
    ///
    /// The order — protocol, channels, failure, churn, loss, repair,
    /// mobility, n, rep, innermost last — is part of the determinism
    /// contract: a trial's position in this list is its identity, and its
    /// `stream_seed` derives from it.
    ///
    /// `scenario_seed` is keyed by `(base_seed, n, rep)` only, matching
    /// `SweepConfig::seed` in the experiment harness, so every protocol /
    /// channel / failure variant of a repetition shares its deployment.
    pub fn expand(&self) -> Vec<Trial> {
        let mut trials = Vec::with_capacity(self.trial_count());
        let stream_root = derive_seed(self.base_seed, 0xCA3B_A16E);
        for &protocol in &self.protocols {
            for &channels in &self.channels {
                for &failure in &self.failures {
                    for &churn in &self.churn {
                        for &loss in &self.losses {
                            for &repair in &self.repair {
                                for &mobility in &self.mobility {
                                    for &n in &self.ns {
                                        for rep in 0..self.reps {
                                            let index = trials.len();
                                            trials.push(Trial {
                                                index,
                                                protocol,
                                                channels,
                                                failure,
                                                churn,
                                                loss,
                                                repair,
                                                mobility,
                                                max_retries: self.max_retries,
                                                n,
                                                rep,
                                                field_side: self.field_side,
                                                record_trace: self.record_trace,
                                                scenario_seed: derive_seed(
                                                    self.base_seed,
                                                    ((n as u64) << 20) | rep,
                                                ),
                                                stream_seed: derive_seed(stream_root, index as u64),
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        trials
    }
}

/// One fully-specified simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Position in [`CampaignSpec::expand`]'s order (the trial identity).
    pub index: usize,
    /// Protocol under test.
    pub protocol: ProtocolSpec,
    /// Radio channels.
    pub channels: u8,
    /// Failure template to instantiate.
    pub failure: FailureTemplate,
    /// Churn template to apply before the broadcast.
    pub churn: ChurnTemplate,
    /// Channel-loss level.
    pub loss: LossSpec,
    /// Whether fail-stop victims are detected and repaired before the
    /// measured broadcast.
    pub repair: bool,
    /// Mobility template to run before the measured broadcast.
    pub mobility: MobilitySpec,
    /// Retry budget for the reliable CFF (from the spec's scalar).
    pub max_retries: u32,
    /// Deployment size.
    pub n: usize,
    /// Repetition number within the cell.
    pub rep: u64,
    /// Square field side.
    pub field_side: f64,
    /// Whether to record the event trace.
    pub record_trace: bool,
    /// Deployment seed — shared across protocols/channels/failures of the
    /// same `(n, rep)` so comparisons are paired.
    pub scenario_seed: u64,
    /// Private RNG stream for victim draws and churn placement.
    pub stream_seed: u64,
}

impl Trial {
    /// The cell label axes `(protocol, channels, failure, churn, loss,
    /// repair, mobility, n)` — everything except the repetition.
    pub fn cell_label(&self) -> String {
        format!(
            "{} k={} fail={} churn={} loss={} repair={} mob={} n={}",
            self.protocol.name(),
            self.channels,
            self.failure.label(),
            self.churn.label(),
            self.loss.label(),
            repair_label(self.repair),
            self.mobility.label(),
            self.n
        )
    }

    /// Whether two trials belong to the same aggregation cell.
    pub fn same_cell(&self, other: &Trial) -> bool {
        self.protocol == other.protocol
            && self.channels == other.channels
            && self.failure == other.failure
            && self.churn == other.churn
            && self.loss == other.loss
            && self.repair == other.repair
            && self.mobility == other.mobility
            && self.n == other.n
    }
}

/// Condensed outcome of one trial — the record streamed into the sink.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Rounds until the engine stopped.
    pub rounds: u64,
    /// Targets that received the message.
    pub delivered: u64,
    /// Intended receivers.
    pub targets: u64,
    /// Targets still alive when the run ended.
    pub targets_alive: u64,
    /// Delivered targets among the alive ones.
    pub delivered_alive: u64,
    /// First round by which half the targets were covered (trace only).
    pub t50: Option<u64>,
    /// First round by which 90% of the targets were covered (trace only).
    pub t90: Option<u64>,
    /// Round the last target was covered; `None` unless all were.
    pub t_full: Option<u64>,
    /// Time-to-repair (detection + eviction/re-homing rounds) summed over
    /// the repaired victims; `None` when the trial did not repair.
    pub repair_rounds: Option<u64>,
    /// Rounds the worst-off node stayed awake (Figure 9's metric).
    pub max_awake: u64,
    /// Mean awake rounds over all participating nodes.
    pub mean_awake: f64,
    /// Receiver-side collisions; `None` when the trace was off.
    pub collisions: Option<u64>,
    /// Analytic round bound for this protocol and network.
    pub bound: u64,
    /// Live nodes after churn was applied (= deployment n without churn).
    pub nodes: u64,
    /// Structure reconfigurations during the mobility phase; `None` when
    /// the trial was static.
    pub reconfigs: Option<u64>,
    /// Slot-assignment changes during the mobility phase; `None` when the
    /// trial was static.
    pub slot_churn: Option<u64>,
}

impl TrialRecord {
    /// Fraction of targets that received the message.
    pub fn delivery_ratio(&self) -> f64 {
        if self.targets == 0 {
            1.0
        } else {
            self.delivered as f64 / self.targets as f64
        }
    }

    /// Fraction of the targets alive at the end of the run that received
    /// the message.
    pub fn delivery_ratio_alive(&self) -> f64 {
        if self.targets_alive == 0 {
            1.0
        } else {
            self.delivered_alive as f64 / self.targets_alive as f64
        }
    }

    /// Whether every target received the message.
    pub fn completed(&self) -> bool {
        self.delivered == self.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_axis_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new("t");
        spec.protocols = vec![ProtocolSpec::ImprovedCff, ProtocolSpec::Dfo];
        spec.ns = vec![40, 80];
        spec.reps = 2;
        spec
    }

    #[test]
    fn expansion_is_the_full_grid_in_stable_order() {
        let spec = two_axis_spec();
        let trials = spec.expand();
        assert_eq!(trials.len(), spec.trial_count());
        assert_eq!(trials.len(), 8);
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.index, i);
        }
        // Innermost axis is rep, then n, protocol outermost.
        assert_eq!(trials[0].protocol, ProtocolSpec::ImprovedCff);
        assert_eq!((trials[0].n, trials[0].rep), (40, 0));
        assert_eq!((trials[1].n, trials[1].rep), (40, 1));
        assert_eq!((trials[2].n, trials[2].rep), (80, 0));
        assert_eq!(trials[4].protocol, ProtocolSpec::Dfo);
    }

    #[test]
    fn scenario_seeds_pair_protocols_and_stream_seeds_do_not() {
        let trials = two_axis_spec().expand();
        // Same (n, rep), different protocol → same deployment seed.
        assert_eq!(trials[0].scenario_seed, trials[4].scenario_seed);
        // Stream seeds are per-trial.
        assert_ne!(trials[0].stream_seed, trials[4].stream_seed);
        // Different reps diverge everywhere.
        assert_ne!(trials[0].scenario_seed, trials[1].scenario_seed);
    }

    #[test]
    fn expansion_is_reproducible() {
        let spec = two_axis_spec();
        assert_eq!(spec.expand(), spec.expand());
    }

    #[test]
    fn labels_roundtrip() {
        for f in [
            FailureTemplate::None,
            FailureTemplate::Backbone { count: 3, round: 1 },
            FailureTemplate::Random { count: 7, round: 4 },
            FailureTemplate::BackboneOutage {
                count: 3,
                round: 1,
                duration: 10,
            },
            FailureTemplate::RandomOutage {
                count: 2,
                round: 5,
                duration: 8,
            },
        ] {
            assert_eq!(FailureTemplate::parse(&f.label()), Some(f));
        }
        assert_eq!(
            FailureTemplate::BackboneOutage {
                count: 3,
                round: 1,
                duration: 10
            }
            .label(),
            "bb3@1+10"
        );
        for c in [
            ChurnTemplate::default(),
            ChurnTemplate {
                joins: 5,
                leaves: 2,
            },
        ] {
            assert_eq!(ChurnTemplate::parse(&c.label()), Some(c));
        }
        for p in [
            ProtocolSpec::Dfo,
            ProtocolSpec::BasicCff,
            ProtocolSpec::ImprovedCff,
            ProtocolSpec::ReliableCff,
        ] {
            assert_eq!(ProtocolSpec::parse(p.name()), Some(p));
        }
        for l in [LossSpec::none(), LossSpec::from_probability(0.05)] {
            assert_eq!(LossSpec::parse(&l.label()), Some(l));
        }
        assert_eq!(LossSpec::from_probability(0.05).label(), "p0.05");
        for m in [
            MobilitySpec::None,
            MobilitySpec::random_waypoint(0.05, 20, 2),
            MobilitySpec::gauss_markov(0.05, 20),
        ] {
            assert_eq!(MobilitySpec::parse(&m.label()), Some(m));
        }
        assert_eq!(
            MobilitySpec::random_waypoint(0.05, 20, 2).label(),
            "rwp0.05x20p2"
        );
        assert_eq!(MobilitySpec::gauss_markov(0.05, 20).label(), "gm0.05x20");
        assert_eq!(MobilitySpec::parse("rwp0x5p1"), None);
        assert_eq!(MobilitySpec::parse("rwp0.05x20"), None);
        for r in [false, true] {
            assert_eq!(parse_repair(repair_label(r)), Some(r));
        }
        assert_eq!(FailureTemplate::parse("bogus"), None);
        assert_eq!(ChurnTemplate::parse("j3"), None);
        assert_eq!(LossSpec::parse("p1.5"), None);
        assert_eq!(parse_repair("maybe"), None);
    }

    #[test]
    fn loss_and_repair_axes_multiply_the_grid() {
        let mut spec = two_axis_spec();
        spec.losses = vec![LossSpec::none(), LossSpec::from_probability(0.1)];
        spec.repair = vec![false, true];
        let trials = spec.expand();
        assert_eq!(trials.len(), spec.trial_count());
        assert_eq!(trials.len(), 32);
        // Loss is outside repair, which is outside n.
        assert!(trials[0].loss.is_none() && !trials[0].repair);
        assert!(trials[0].same_cell(&trials[1]));
        assert!(!trials[0].same_cell(&trials[4])); // repair flipped
        assert!(!trials[0].same_cell(&trials[8])); // loss flipped
        assert_eq!(trials[8].loss, LossSpec::from_probability(0.1));
    }

    #[test]
    fn mobility_axis_multiplies_the_grid_inside_repair() {
        let mut spec = two_axis_spec();
        spec.mobility = vec![
            MobilitySpec::None,
            MobilitySpec::random_waypoint(0.05, 10, 2),
        ];
        let trials = spec.expand();
        assert_eq!(trials.len(), spec.trial_count());
        assert_eq!(trials.len(), 16);
        // Mobility sits between repair and n: the first ns.len()·reps
        // trials are static, the next block is mobile.
        assert!(trials[0].mobility.is_none());
        assert!(!trials[4].mobility.is_none());
        assert!(!trials[0].same_cell(&trials[4]));
        // Scenario seeds stay paired across the mobility axis.
        assert_eq!(trials[0].scenario_seed, trials[4].scenario_seed);
        // A static-only spec expands exactly as before the axis existed.
        let static_spec = two_axis_spec();
        let static_trials = static_spec.expand();
        assert_eq!(static_trials.len(), 8);
        for (a, b) in static_trials.iter().zip(&trials[..4]) {
            assert_eq!(a.scenario_seed, b.scenario_seed);
            assert_eq!(a.stream_seed, b.stream_seed);
        }
    }

    #[test]
    fn cell_membership_ignores_rep() {
        let trials = two_axis_spec().expand();
        assert!(trials[0].same_cell(&trials[1]));
        assert!(!trials[0].same_cell(&trials[2])); // different n
        assert!(!trials[0].same_cell(&trials[4])); // different protocol
    }
}
