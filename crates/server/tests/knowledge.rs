//! Satellite contract: concurrent readers holding `Arc<NetKnowledge>`
//! snapshots across a structural mutation keep observing the old,
//! internally consistent version — the PR 4 version-keyed cache
//! contract, exercised from the server's vantage point.

use std::sync::{Arc, Barrier};

use dsnet::{SessionCommand, SessionSpec};
use dsnet_server::{Host, HostConfig};

#[test]
fn readers_pin_old_knowledge_across_a_mutation() {
    const READERS: usize = 8;

    let host = Arc::new(Host::new(HostConfig::default()));
    let spec = SessionSpec {
        nodes: 32,
        seed: 7,
        ..SessionSpec::default()
    };
    host.create("tenant", spec).expect("create");

    // Pin the pre-mutation snapshot once on the main thread so every
    // reader can deep-compare against it.
    let (v0, k0) = host.knowledge("tenant").expect("baseline knowledge");
    let baseline = (*k0).clone();

    // All readers pin their own (version, Arc) pair, then rendezvous;
    // the mutation happens only after every reader holds a snapshot.
    let pinned = Barrier::new(READERS + 1);
    let mutated = Barrier::new(READERS + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let host = Arc::clone(&host);
                let pinned = &pinned;
                let mutated = &mutated;
                let baseline = &baseline;
                scope.spawn(move || {
                    let (version, knowledge) = host.knowledge("tenant").expect("reader snapshot");
                    pinned.wait();
                    mutated.wait();
                    // The mutation has happened on the main thread; the
                    // pinned Arc must still be the old consistent view.
                    assert_eq!(version, v0, "pinned version must be pre-mutation");
                    assert_eq!(
                        &*knowledge, baseline,
                        "pinned snapshot must be byte-for-byte the old knowledge"
                    );
                    knowledge.nodes
                })
            })
            .collect();

        pinned.wait();
        let record = host
            .apply("tenant", &SessionCommand::MoveOut { node: 2 })
            .expect("structural mutation");
        assert!(record.status.is_applied(), "{:?}", record.status);
        mutated.wait();

        for h in handles {
            assert_eq!(h.join().expect("reader"), baseline.nodes);
        }
    });

    // A fresh read now sees the bumped version and the shrunken network.
    let (v1, k1) = host.knowledge("tenant").expect("post-mutation knowledge");
    assert!(v1 > v0, "structural mutation must bump the version");
    assert_eq!(k1.nodes, baseline.nodes - 1);
    assert!(
        Arc::strong_count(&k0) >= 1,
        "old snapshot stays alive as long as someone holds it"
    );
}
