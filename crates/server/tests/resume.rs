//! Crash-injection integration test for `dsnet campaign --resume`.
//!
//! Runs a small campaign to completion for a baseline, then re-runs it
//! with `DSNET_CAMPAIGN_CRASH_AFTER=<n>` killing the process at
//! seeded-random journal appends, resumes each crashed run from its
//! journal, and asserts the resumed artifacts are **byte-identical** to
//! the uninterrupted baseline — at `--threads 1` and `--threads 2`.
//! Also pins the refusal paths: resuming with a mutated spec and
//! resuming an already-complete journal must fail with clear errors.

use dsnet::geom::rng::derive_seed;
use std::path::{Path, PathBuf};
use std::process::Command;

const DSNET: &str = env!("CARGO_BIN_EXE_dsnet");

/// The campaign under test: 2 protocols × 2 sizes × 2 reps = 8 trials,
/// i.e. 16 journal appends (intent + commit per trial).
const SPEC_FLAGS: &[&str] = &[
    "campaign",
    "--ns",
    "20,28",
    "--reps",
    "2",
    "--protocols",
    "cff,dfo",
    "--quiet",
];
const TRIALS: u64 = 8;

/// Per-test scratch dir: tests run in parallel in one process, so each
/// gets its own directory it is free to clean up.
fn workdir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("dsnet-resume-{}", std::process::id()))
        .join(test);
    std::fs::create_dir_all(&dir).expect("workdir");
    dir
}

struct Run {
    status: std::process::ExitStatus,
    stderr: String,
}

/// Run the dsnet binary with the campaign spec flags plus `extra`,
/// optionally under a crash-injection count.
fn run(dir: &Path, extra: &[&str], crash_after: Option<u64>) -> Run {
    let mut cmd = Command::new(DSNET);
    cmd.current_dir(dir).args(SPEC_FLAGS).args(extra);
    match crash_after {
        Some(n) => cmd.env("DSNET_CAMPAIGN_CRASH_AFTER", n.to_string()),
        None => cmd.env_remove("DSNET_CAMPAIGN_CRASH_AFTER"),
    };
    let out = cmd.output().expect("spawn dsnet");
    Run {
        status: out.status,
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn artifact_flags(tag: &str) -> Vec<String> {
    vec![
        "--json".into(),
        format!("{tag}.json"),
        "--csv".into(),
        format!("{tag}.csv"),
        "--trials".into(),
    ]
}

fn read_artifacts(dir: &Path, tag: &str) -> [Vec<u8>; 3] {
    [
        std::fs::read(dir.join(format!("{tag}.json"))).expect("json artifact"),
        std::fs::read(dir.join(format!("{tag}.csv"))).expect("csv artifact"),
        std::fs::read(dir.join(format!("{tag}.csv.trials.csv"))).expect("trials artifact"),
    ]
}

fn as_refs(v: &[String]) -> Vec<&str> {
    v.iter().map(String::as_str).collect()
}

/// Crash at seeded-random append counts, resume, and require the
/// resumed artifacts to match the uninterrupted baseline byte for byte.
#[test]
fn resumed_campaigns_reproduce_uninterrupted_artifacts() {
    let dir = workdir("reproduce");
    let baseline = run(&dir, &as_refs(&artifact_flags("base")), None);
    assert!(baseline.status.success(), "baseline: {}", baseline.stderr);
    let expected = read_artifacts(&dir, "base");

    // Randomized but reproducible crash points across the append range
    // (1..=2*TRIALS), exercised at both thread counts.
    for (round, &threads) in [1usize, 2, 1, 2].iter().enumerate() {
        let crash_after = 1 + derive_seed(0xC4A5_11ED, round as u64) % (2 * TRIALS);
        let tag = format!("r{round}");
        let journal = format!("{tag}.journal");
        let mut flags = artifact_flags(&tag);
        flags.extend([
            "--threads".into(),
            threads.to_string(),
            "--journal".into(),
            journal.clone(),
        ]);
        let crashed = run(&dir, &as_refs(&flags), Some(crash_after));
        assert!(
            !crashed.status.success(),
            "round {round}: expected crash after append {crash_after}, got success"
        );
        assert!(
            crashed.stderr.contains("crash injection"),
            "round {round}: missing injection marker in stderr: {}",
            crashed.stderr
        );

        let mut flags = artifact_flags(&tag);
        flags.extend([
            "--threads".into(),
            threads.to_string(),
            "--resume".into(),
            journal,
        ]);
        let resumed = run(&dir, &as_refs(&flags), None);
        assert!(
            resumed.status.success(),
            "round {round}: resume failed: {}",
            resumed.stderr
        );
        let got = read_artifacts(&dir, &tag);
        for (k, name) in ["json", "csv", "trials.csv"].iter().enumerate() {
            assert!(
                got[k] == expected[k],
                "round {round} ({threads} threads, crash after {crash_after}): \
                 resumed {name} differs from uninterrupted baseline"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming against a different spec (here: an extra repetition) must
/// be refused with a fingerprint error, and the artifacts untouched.
#[test]
fn resume_refuses_mutated_spec() {
    let dir = workdir("mutated");
    let journal = "mutated.journal";
    let crashed = run(&dir, &["--json", "m.json", "--journal", journal], Some(3));
    assert!(!crashed.status.success());

    let mut cmd = Command::new(DSNET);
    cmd.current_dir(&dir)
        .env_remove("DSNET_CAMPAIGN_CRASH_AFTER")
        .args([
            "campaign",
            "--ns",
            "20,28",
            "--reps",
            "3", // baseline recorded --reps 2
            "--protocols",
            "cff,dfo",
            "--quiet",
            "--json",
            "m.json",
            "--resume",
            journal,
        ]);
    let out = cmd.output().expect("spawn dsnet");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "mutated-spec resume must fail");
    assert!(
        stderr.contains("fingerprint"),
        "expected fingerprint refusal, got: {stderr}"
    );
    assert!(
        !dir.join("m.json").exists(),
        "refused resume must not write artifacts"
    );
}

/// Resuming a journal that already commits every trial is a no-op the
/// operator should hear about, not a silent recompute.
#[test]
fn resume_refuses_completed_journal() {
    let dir = workdir("complete");
    let journal = "complete.journal";
    let full = run(&dir, &["--json", "c.json", "--journal", journal], None);
    assert!(full.status.success(), "journaled run: {}", full.stderr);

    let again = run(&dir, &["--json", "c2.json", "--resume", journal], None);
    assert!(
        !again.status.success(),
        "completed-journal resume must fail"
    );
    assert!(
        again.stderr.contains("nothing to resume"),
        "expected completion notice, got: {}",
        again.stderr
    );
}

/// `--journal` is a fresh start: it must refuse to clobber an existing
/// journal file rather than silently restart the campaign.
#[test]
fn journal_refuses_to_overwrite() {
    let dir = workdir("overwrite");
    let journal = "existing.journal";
    let crashed = run(&dir, &["--json", "e.json", "--journal", journal], Some(2));
    assert!(!crashed.status.success());

    let again = run(&dir, &["--json", "e.json", "--journal", journal], None);
    assert!(!again.status.success(), "overwriting --journal must fail");
    assert!(
        again.stderr.contains("--resume"),
        "error should point at --resume, got: {}",
        again.stderr
    );
}
