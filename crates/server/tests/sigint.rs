//! SIGINT drain test. Lives in its own integration-test binary because
//! the SIGINT latch is process-global: sending the signal here must not
//! race other tests' servers.

use dsnet::SessionSpec;
use dsnet_server::{install_sigint_handler, Client, ServeOptions, Server};

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

const SIGINT: i32 = 2;

#[test]
fn sigint_drains_the_server() {
    install_sigint_handler();
    let server = Server::start(&ServeOptions {
        tcp: Some("127.0.0.1:0".into()),
        unix: None,
        max_sessions: 4,
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.tcp_addr().expect("tcp listener").to_string();

    let mut client = Client::connect_tcp(&addr).expect("connect");
    client
        .create(
            "a",
            SessionSpec {
                nodes: 16,
                ..SessionSpec::default()
            },
        )
        .expect("create");

    let rc = unsafe { kill(std::process::id() as i32, SIGINT) };
    assert_eq!(rc, 0, "self-signal");
    drop(client);

    // wait() observes the latch, drains, and returns. If the handler
    // were not installed the signal above would have killed the process
    // before reaching this line.
    server.wait();
}
