//! Property tests for the binary payload codec, mirroring the JSON
//! grammar suite in `protocol.rs`: random values must round-trip
//! byte-exactly, truncation must always be detected, the 1 MiB frame
//! cap must hold at both ends of the pipe, and — the format contract —
//! the JSON and binary encodings of any request or response must decode
//! back to the same value, because both are projections of one shared
//! grammar.

use proptest::prelude::*;

use dsnet::{Protocol, SessionCommand, SessionSpec};
use dsnet_server::json::{binary, Json};
use dsnet_server::protocol::{
    decode_request_bytes, decode_response_bytes, encode_request_bytes, encode_response_bytes,
    read_frame_bytes, write_frame_bytes, Body, ErrKind, FrameFormat, Op, Request, Response,
    WireError, MAX_FRAME,
};

// ---------------------------------------------------------------- values

/// Arbitrary strings over the full scalar-value range (control chars,
/// astral planes; surrogate code points filtered by `char::from_u32`).
fn string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x11_0000, 0..10)
        .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
}

fn json_leaf() -> BoxedStrategy<Json> {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        string().prop_map(Json::Str),
    ]
    .boxed()
}

/// Arbitrary JSON value nested up to `depth` containers — deep enough
/// to exercise the recursive codec, far below its `MAX_DEPTH`.
fn json_value(depth: u32) -> BoxedStrategy<Json> {
    if depth == 0 {
        return json_leaf();
    }
    prop_oneof![
        3 => json_leaf(),
        1 => prop::collection::vec(json_value(depth - 1), 0..5).prop_map(Json::Arr),
        1 => prop::collection::vec((string(), json_value(depth - 1)), 0..5)
            .prop_map(Json::Obj),
    ]
    .boxed()
}

proptest! {
    /// Any value survives encode → decode unchanged.
    #[test]
    fn binary_roundtrips_any_value(v in json_value(3)) {
        let bytes = binary::to_bytes(&v);
        prop_assert_eq!(binary::from_bytes(&bytes).expect("roundtrip"), v);
    }

    /// Cutting any number of trailing bytes is always an error, never a
    /// panic and never a silently-shortened value.
    #[test]
    fn truncated_binary_is_always_detected(v in json_value(3), cut in 1usize..64) {
        // Every encoding is at least one byte (the tag), so removing
        // at least one byte always lands mid-value.
        let bytes = binary::to_bytes(&v);
        let keep = bytes.len() - cut.min(bytes.len()).max(1);
        prop_assert!(binary::from_bytes(&bytes[..keep]).is_err());
    }

    /// Unknown tags are rejected outright (7.. are reserved).
    #[test]
    fn unknown_tags_are_rejected(tag in 7u8..=u8::MAX, rest in prop::collection::vec(any::<u8>(), 0..16)) {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&rest);
        prop_assert!(binary::from_bytes(&bytes).is_err());
    }
}

// ---------------------------------------------------------------- grammar

fn session_spec() -> impl Strategy<Value = SessionSpec> {
    (
        0usize..1_000_000,
        any::<u64>(), // full-range: the two's-complement wire contract
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
    )
        .prop_map(
            |(nodes, seed, field_milli, groups, membership_ppm)| SessionSpec {
                nodes,
                seed,
                field_milli,
                groups,
                membership_ppm,
            },
        )
}

fn protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::ImprovedCff),
        Just(Protocol::BasicCff),
        Just(Protocol::ReliableCff),
        Just(Protocol::Dfo),
    ]
}

fn opt_node() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![Just(None), any::<u32>().prop_map(Some),]
}

fn session_command() -> BoxedStrategy<SessionCommand> {
    prop_oneof![
        (
            protocol(),
            opt_node(),
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
        )
            .prop_map(
                |(protocol, source, channels, loss_ppm, retries, min_delivery_ppm)| {
                    SessionCommand::Broadcast {
                        protocol,
                        source,
                        channels,
                        loss_ppm,
                        retries,
                        min_delivery_ppm,
                    }
                }
            ),
        (any::<u16>(), opt_node())
            .prop_map(|(group, source)| SessionCommand::Multicast { group, source }),
        (
            any::<i64>(),
            any::<i64>(),
            prop::collection::vec(any::<u16>(), 0..4),
        )
            .prop_map(|(x_milli, y_milli, groups)| SessionCommand::MoveIn {
                x_milli,
                y_milli,
                groups,
            }),
        any::<u32>().prop_map(|node| SessionCommand::MoveOut { node }),
        any::<u32>().prop_map(|node| SessionCommand::Kill { node }),
        any::<u32>().prop_map(|node| SessionCommand::Revive { node }),
        any::<u32>().prop_map(|node| SessionCommand::Repair { node }),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(epochs, movers, step_milli)| {
            SessionCommand::Mobility {
                epochs,
                movers,
                step_milli,
            }
        }),
        Just(SessionCommand::Snapshot),
    ]
    .boxed()
}

fn op() -> BoxedStrategy<Op> {
    prop_oneof![
        Just(Op::Ping),
        (string(), session_spec()).prop_map(|(session, spec)| Op::Create { session, spec }),
        string().prop_map(|session| Op::Destroy { session }),
        (string(), session_command()).prop_map(|(session, cmd)| Op::Cmd { session, cmd }),
        string().prop_map(|session| Op::Stream { session }),
        string().prop_map(|session| Op::Watch { session }),
        string().prop_map(|session| Op::Peek { session }),
        prop_oneof![Just(FrameFormat::Json), Just(FrameFormat::Binary)]
            .prop_map(|format| Op::Frames { format }),
        Just(Op::Shutdown),
    ]
    .boxed()
}

fn request() -> impl Strategy<Value = Request> {
    // Ids ride the wire as non-negative i64 (0 is reserved for events).
    (1u64..=i64::MAX as u64, op()).prop_map(|(id, op)| Request { id, op })
}

fn err_kind() -> impl Strategy<Value = ErrKind> {
    prop_oneof![
        Just(ErrKind::MalformedFrame),
        Just(ErrKind::UnknownSession),
        Just(ErrKind::DuplicateSession),
        Just(ErrKind::CommandRejected),
        Just(ErrKind::Busy),
        Just(ErrKind::ShuttingDown),
        Just(ErrKind::Internal),
    ]
}

fn response() -> impl Strategy<Value = Response> {
    let body = prop_oneof![
        json_value(3).prop_map(Body::Ok),
        (err_kind(), string()).prop_map(|(kind, detail)| Body::Err { kind, detail }),
        json_value(2).prop_map(Body::Event),
    ];
    (0u64..=i64::MAX as u64, body).prop_map(|(id, body)| Response { id, body })
}

proptest! {
    /// The format contract over the full request grammar: both encodings
    /// of the same request decode back to it, so a client may negotiate
    /// either format without changing semantics.
    #[test]
    fn request_grammar_is_format_equivalent(req in request()) {
        for format in [FrameFormat::Json, FrameFormat::Binary] {
            let bytes = encode_request_bytes(&req, format);
            let back = decode_request_bytes(&bytes, format)
                .unwrap_or_else(|f| panic!("{format:?}: {}", f.detail()));
            prop_assert_eq!(back, req.clone(), "{:?}", format);
        }
    }

    /// Same contract over the full response grammar (ok / typed error /
    /// pushed event).
    #[test]
    fn response_grammar_is_format_equivalent(resp in response()) {
        for format in [FrameFormat::Json, FrameFormat::Binary] {
            let bytes = encode_response_bytes(&resp, format);
            let back = decode_response_bytes(&bytes, format)
                .unwrap_or_else(|f| panic!("{format:?}: {}", f.detail()));
            prop_assert_eq!(back, resp.clone(), "{:?}", format);
        }
    }

    /// A truncated binary request payload is an encoding fault, never a
    /// misparse into a different request.
    #[test]
    fn truncated_binary_requests_fault(req in request(), cut in 1usize..32) {
        let bytes = encode_request_bytes(&req, FrameFormat::Binary);
        let keep = bytes.len() - cut.min(bytes.len()).max(1);
        prop_assert!(decode_request_bytes(&bytes[..keep], FrameFormat::Binary).is_err());
    }

    /// The frame writer refuses payloads over the 1 MiB cap before any
    /// bytes hit the wire.
    #[test]
    fn oversized_writes_are_refused(extra in 1u32..1024) {
        let payload = vec![0u8; (MAX_FRAME + extra) as usize];
        let mut sink = Vec::new();
        match write_frame_bytes(&mut sink, &payload) {
            Err(WireError::Oversized { len, max }) => {
                prop_assert_eq!(len, MAX_FRAME + extra);
                prop_assert_eq!(max, MAX_FRAME);
                prop_assert!(sink.is_empty(), "no partial frame escapes");
            }
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }

    /// The frame reader rejects an oversized header without reading (or
    /// allocating) the advertised body.
    #[test]
    fn oversized_headers_are_refused(len in MAX_FRAME + 1..=u32::MAX) {
        let framed = len.to_be_bytes().to_vec();
        let mut cursor = std::io::Cursor::new(framed);
        match read_frame_bytes(&mut cursor) {
            Err(WireError::Oversized { len: got, max }) => {
                prop_assert_eq!(got, len);
                prop_assert_eq!(max, MAX_FRAME);
            }
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }
}
