//! End-to-end wire tests: a live daemon driven through [`Client`],
//! pinned against the library-direct executor.

use std::io::{Read, Write};
use std::net::TcpStream;

use dsnet::geom::rng::derive_seed;
use dsnet::session::render_stream;
use dsnet::{NetSession, Protocol, SessionCommand, SessionSpec};
use dsnet_server::protocol::{self, read_frame};
use dsnet_server::{run_script, Client, ClientError, ErrKind, ServeOptions, Server};

fn tcp_server(max_sessions: usize) -> (Server, String) {
    let server = Server::start(&ServeOptions {
        tcp: Some("127.0.0.1:0".into()),
        unix: None,
        max_sessions,
        ..ServeOptions::default()
    })
    .expect("ephemeral TCP bind");
    let addr = server.tcp_addr().expect("tcp listener").to_string();
    (server, addr)
}

fn demo_spec() -> SessionSpec {
    SessionSpec {
        nodes: 40,
        // Deliberately above i64::MAX so the two's-complement seed wire
        // contract is exercised end-to-end.
        seed: derive_seed(u64::MAX - 12, 3),
        ..SessionSpec::default()
    }
}

fn demo_script() -> Vec<SessionCommand> {
    vec![
        SessionCommand::Broadcast {
            protocol: Protocol::ImprovedCff,
            source: None,
            channels: 1,
            loss_ppm: 0,
            retries: 0,
            min_delivery_ppm: 0,
        },
        SessionCommand::Kill { node: 3 },
        SessionCommand::Broadcast {
            protocol: Protocol::Dfo,
            source: None,
            channels: 1,
            loss_ppm: 40_000,
            retries: 2,
            min_delivery_ppm: 900_000,
        },
        SessionCommand::MoveOut { node: 5 },
        SessionCommand::MoveIn {
            x_milli: 4_500,
            y_milli: 4_500,
            groups: vec![],
        },
        SessionCommand::Mobility {
            epochs: 2,
            movers: 2,
            step_milli: 400,
        },
        SessionCommand::Revive { node: 3 },
        SessionCommand::Snapshot,
    ]
}

/// The tentpole contract: a scripted sequence through the daemon yields
/// a byte-identical event stream to the same sequence applied directly
/// to the library.
#[test]
fn server_stream_is_byte_identical_to_library_direct() {
    let (server, addr) = tcp_server(8);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let report =
        run_script(&mut client, "e2e", demo_spec(), &demo_script(), true).expect("scripted run");

    let mut direct = NetSession::new(demo_spec()).expect("direct build");
    for cmd in demo_script() {
        direct.apply(&cmd);
    }
    let direct_stream = render_stream(direct.spec(), direct.records(), false);

    assert_eq!(report.stream, direct_stream);
    assert_eq!(report.applied + report.rejected, demo_script().len() as u64);

    client.shutdown().expect("shutdown");
    drop(client);
    server.wait();
}

/// Same contract over a unix socket.
#[test]
fn unix_socket_serves_the_same_streams() {
    let path = std::env::temp_dir().join(format!("dsnet-e2e-{}.sock", std::process::id()));
    let server = Server::start(&ServeOptions {
        tcp: None,
        unix: Some(path.clone()),
        max_sessions: 4,
        ..ServeOptions::default()
    })
    .expect("unix bind");
    let mut client = Client::connect_unix(&path).expect("connect");
    let report =
        run_script(&mut client, "ux", demo_spec(), &demo_script(), true).expect("scripted run");

    let mut direct = NetSession::new(demo_spec()).expect("direct build");
    for cmd in demo_script() {
        direct.apply(&cmd);
    }
    assert_eq!(
        report.stream,
        render_stream(direct.spec(), direct.records(), false)
    );

    client.shutdown().expect("shutdown");
    drop(client);
    server.wait();
    assert!(!path.exists(), "socket file is removed on drain");
}

/// Session-limit backpressure answers a typed busy error, and destroys
/// free capacity.
#[test]
fn session_limit_backpressure_over_the_wire() {
    let (server, addr) = tcp_server(2);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let spec = SessionSpec {
        nodes: 16,
        ..SessionSpec::default()
    };
    client.create("a", spec.clone()).expect("first");
    client.create("b", spec.clone()).expect("second");
    match client.create("c", spec.clone()) {
        Err(ClientError::Server { kind, detail }) => {
            assert_eq!(kind, ErrKind::Busy);
            assert!(detail.contains("limit 2"), "{detail}");
        }
        other => panic!("expected busy, got {other:?}"),
    }
    client.destroy("a").expect("destroy frees a slot");
    client.create("c", spec).expect("slot reusable");

    client.shutdown().expect("shutdown");
    drop(client);
    server.wait();
}

/// The wire `shutdown` op drains: existing results stay readable, new
/// sessions and commands are refused with the typed shutting-down error.
#[test]
fn shutdown_op_drains_but_serves_reads() {
    let (server, addr) = tcp_server(8);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let spec = SessionSpec {
        nodes: 16,
        ..SessionSpec::default()
    };
    client.create("a", spec.clone()).expect("create");
    client.cmd("a", SessionCommand::Snapshot).expect("cmd");
    client.shutdown().expect("shutdown op");

    match client.create("b", spec) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrKind::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    match client.cmd("a", SessionCommand::Snapshot) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrKind::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    let stream = client.stream_text("a").expect("reads still served");
    assert_eq!(stream.lines().count(), 2);

    drop(client);
    server.wait();
}

/// Unknown sessions and rejected commands map onto their own error
/// kinds, and a rejected command still lands in the recorded stream.
#[test]
fn error_taxonomy_over_the_wire() {
    let (server, addr) = tcp_server(8);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    match client.cmd("ghost", SessionCommand::Snapshot) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrKind::UnknownSession),
        other => panic!("expected unknown_session, got {other:?}"),
    }
    let spec = SessionSpec {
        nodes: 16,
        ..SessionSpec::default()
    };
    client.create("a", spec.clone()).expect("create");
    match client.create("a", spec) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrKind::DuplicateSession),
        other => panic!("expected duplicate_session, got {other:?}"),
    }
    // channels = 0 fails executor validation → command_rejected, and the
    // rejection is part of the deterministic stream.
    match client.cmd(
        "a",
        SessionCommand::Broadcast {
            protocol: Protocol::ImprovedCff,
            source: None,
            channels: 0,
            loss_ppm: 0,
            retries: 0,
            min_delivery_ppm: 0,
        },
    ) {
        Err(ClientError::Server { kind, detail }) => {
            assert_eq!(kind, ErrKind::CommandRejected);
            assert!(detail.contains("channels"), "{detail}");
        }
        other => panic!("expected command_rejected, got {other:?}"),
    }
    let stream = client.stream_text("a").expect("stream");
    assert!(stream.contains("\"status\": \"rejected\""), "{stream}");

    client.shutdown().expect("shutdown");
    drop(client);
    server.wait();
}

/// A garbage frame gets a typed malformed-frame response; an oversized
/// header closes the connection after the typed error.
#[test]
fn malformed_and_oversized_frames_answer_typed_errors() {
    let (server, addr) = tcp_server(8);

    // Valid frame, invalid grammar: connection stays usable.
    {
        let mut raw = TcpStream::connect(&addr).expect("connect");
        let payload = b"{\"not\": \"a request\"}";
        raw.write_all(&(payload.len() as u32).to_be_bytes())
            .unwrap();
        raw.write_all(payload).unwrap();
        let resp = read_frame(&mut raw).expect("error response");
        assert!(resp.contains("\"err\":\"malformed_frame\""), "{resp}");
    }

    // Oversized header: typed error, then the server hangs up.
    {
        let mut raw = TcpStream::connect(&addr).expect("connect");
        raw.write_all(&(protocol::MAX_FRAME + 1).to_be_bytes())
            .unwrap();
        let resp = read_frame(&mut raw).expect("error response");
        assert!(resp.contains("\"err\":\"malformed_frame\""), "{resp}");
        assert!(resp.contains("oversized"), "{resp}");
        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).expect("peer closed");
        assert!(rest.is_empty());
    }

    let mut client = Client::connect_tcp(&addr).expect("connect");
    client.shutdown().expect("shutdown");
    drop(client);
    server.wait();
}

/// A watch subscription streams each subsequently applied record as a
/// deterministic event line.
#[test]
fn watch_subscription_streams_records() {
    let (server, addr) = tcp_server(8);
    let mut driver = Client::connect_tcp(&addr).expect("driver connect");
    let spec = SessionSpec {
        nodes: 16,
        ..SessionSpec::default()
    };
    driver.create("a", spec).expect("create");
    driver
        .cmd("a", SessionCommand::Snapshot)
        .expect("pre-watch cmd");

    let watcher = Client::connect_tcp(&addr).expect("watcher connect");
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let watch_thread = std::thread::spawn(move || {
        watcher
            .watch("a", |line| {
                tx.send(line.to_string()).expect("collect");
                false // one event is enough
            })
            .expect("watch");
    });
    // The watch op races the command below through different
    // connections; wait until the subscription is registered.
    std::thread::sleep(std::time::Duration::from_millis(200));
    driver
        .cmd("a", SessionCommand::Kill { node: 1 })
        .expect("cmd");

    let line = rx
        .recv_timeout(std::time::Duration::from_secs(5))
        .expect("watch event");
    assert!(line.contains("\"cmd\": \"kill\""), "{line}");
    assert!(
        line.contains("\"seq\": 1"),
        "pre-watch records not replayed: {line}"
    );
    watch_thread.join().expect("watch thread");

    driver.shutdown().expect("shutdown");
    drop(driver);
    server.wait();
}
