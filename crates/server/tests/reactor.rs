//! Reactor-engine integration tests: the sharded readiness reactor must
//! serve the exact streams the thread engine and the library-direct
//! executor produce, over both payload formats, while keeping its
//! multiplexing guarantees — a peer stalled mid-frame cannot stall its
//! shard, pipelined frames answer in order, and shutdown latency is
//! bounded by the reactor, not by polling loops.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dsnet::geom::rng::derive_seed;
use dsnet::session::render_stream;
use dsnet::{NetSession, Protocol, SessionCommand, SessionSpec};
use dsnet_server::protocol::{
    decode_response_bytes, encode_request_bytes, read_frame_bytes, write_frame_bytes, Body,
    FrameFormat, Op, Request,
};
use dsnet_server::{run_script, Client, IoMode, ServeOptions, Server};

fn serve(io: IoMode, shards: usize, read_deadline_ms: u64) -> (Server, String) {
    let server = Server::start(&ServeOptions {
        tcp: Some("127.0.0.1:0".into()),
        max_sessions: 64,
        io,
        shards,
        read_deadline_ms,
        ..ServeOptions::default()
    })
    .expect("ephemeral TCP bind");
    let addr = server.tcp_addr().expect("tcp listener").to_string();
    (server, addr)
}

fn spec() -> SessionSpec {
    SessionSpec {
        nodes: 32,
        seed: derive_seed(0xAC7012, 9),
        ..SessionSpec::default()
    }
}

fn script() -> Vec<SessionCommand> {
    vec![
        SessionCommand::Broadcast {
            protocol: Protocol::ImprovedCff,
            source: None,
            channels: 1,
            loss_ppm: 0,
            retries: 0,
            min_delivery_ppm: 0,
        },
        SessionCommand::Kill { node: 2 },
        SessionCommand::Broadcast {
            protocol: Protocol::Dfo,
            source: None,
            channels: 1,
            loss_ppm: 0,
            retries: 0,
            min_delivery_ppm: 0,
        },
        SessionCommand::MoveOut { node: 3 },
        SessionCommand::Snapshot,
    ]
}

fn direct_stream() -> String {
    let mut direct = NetSession::new(spec()).expect("direct build");
    for cmd in script() {
        direct.apply(&cmd);
    }
    render_stream(direct.spec(), direct.records(), false)
}

fn daemon_stream(addr: &str, format: FrameFormat) -> String {
    let mut client = Client::connect_tcp(addr).expect("connect");
    client.negotiate(format).expect("format negotiation");
    let report = run_script(&mut client, "s", spec(), &script(), true).expect("scripted run");
    report.stream
}

/// The tentpole determinism contract across all three execution paths
/// and both payload formats: reactor daemon, thread daemon and the
/// library-direct executor all yield byte-identical streams.
#[test]
fn reactor_threads_and_direct_streams_are_byte_identical() {
    let want = direct_stream();
    for io in [IoMode::Reactor, IoMode::Threads] {
        let (server, addr) = serve(io, 0, 0);
        for format in [FrameFormat::Json, FrameFormat::Binary] {
            assert_eq!(
                daemon_stream(&addr, format),
                want,
                "stream drift on {io:?}/{format:?}"
            );
        }
        let mut client = Client::connect_tcp(&addr).expect("connect");
        client.shutdown().expect("shutdown");
        drop(client);
        server.wait();
    }
}

/// Mid-connection format negotiation: a session driven half in JSON and
/// half in binary (switched between commands) records the same stream.
#[test]
fn mid_connection_negotiation_preserves_the_stream() {
    let (server, addr) = serve(IoMode::Reactor, 0, 0);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let cmds = script();
    client.create("s", spec()).expect("create");
    for (i, cmd) in cmds.iter().enumerate() {
        // Flip the payload format before every other command.
        let format = if i % 2 == 0 {
            FrameFormat::Binary
        } else {
            FrameFormat::Json
        };
        client.negotiate(format).expect("negotiate");
        let _ = client.cmd("s", cmd.clone());
    }
    let stream = client.stream_text("s").expect("stream");
    assert_eq!(stream, direct_stream());

    client.shutdown().expect("shutdown");
    drop(client);
    server.wait();
}

/// Watch subscriptions honour the format the connection had when the
/// watch was registered: a binary-negotiated watcher receives decodable
/// binary event frames.
#[test]
fn binary_watcher_receives_events() {
    let (server, addr) = serve(IoMode::Reactor, 0, 0);
    let mut driver = Client::connect_tcp(&addr).expect("driver connect");
    driver.create("s", spec()).expect("create");

    let mut watcher = Client::connect_tcp(&addr).expect("watcher connect");
    watcher
        .negotiate(FrameFormat::Binary)
        .expect("binary negotiation");
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let watch_thread = std::thread::spawn(move || {
        watcher
            .watch("s", |line| {
                tx.send(line.to_string()).expect("collect");
                false
            })
            .expect("watch");
    });
    std::thread::sleep(Duration::from_millis(200));
    driver
        .cmd("s", SessionCommand::Kill { node: 1 })
        .expect("cmd");

    let line = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("watch event over binary framing");
    assert!(line.contains("\"cmd\": \"kill\""), "{line}");
    watch_thread.join().expect("watch thread");

    driver.shutdown().expect("shutdown");
    drop(driver);
    server.wait();
}

/// A peer parked mid-frame must not stall its shard: with a single
/// shard and a short read deadline, a healthy neighbor keeps completing
/// requests the whole time, and the stalled connection is eventually
/// closed by the deadline.
#[test]
fn stalled_peer_is_deadlined_while_neighbor_progresses() {
    let (server, addr) = serve(IoMode::Reactor, 1, 250);

    // Write a frame header promising 100 bytes, deliver 10, then stall.
    let mut stalled = TcpStream::connect(&addr).expect("stalled connect");
    stalled.write_all(&100u32.to_be_bytes()).expect("header");
    stalled.write_all(&[b'{'; 10]).expect("partial payload");

    // The neighbor on the same (only) shard stays fully served.
    let mut healthy = Client::connect_tcp(&addr).expect("healthy connect");
    let start = Instant::now();
    let mut pings = 0u32;
    while start.elapsed() < Duration::from_millis(600) {
        healthy.ping().expect("neighbor ping during stall");
        pings += 1;
    }
    assert!(pings > 10, "neighbor starved: only {pings} pings");

    // The stalled connection was closed by the read deadline.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut rest = Vec::new();
    stalled
        .read_to_end(&mut rest)
        .expect("server closed the stalled peer");
    assert!(rest.is_empty(), "no reply owed to a torn frame");

    healthy.shutdown().expect("shutdown");
    drop(healthy);
    server.wait();
}

/// Pipelined frames — many requests written before any response is
/// read — answer strictly in request order with matching ids.
#[test]
fn pipelined_requests_answer_in_order() {
    let (server, addr) = serve(IoMode::Reactor, 0, 0);
    let mut raw = TcpStream::connect(&addr).expect("connect");

    let mut batch = Vec::new();
    write_frame_bytes(
        &mut batch,
        &encode_request_bytes(
            &Request {
                id: 1,
                op: Op::Create {
                    session: "s".into(),
                    spec: spec(),
                },
            },
            FrameFormat::Json,
        ),
    )
    .expect("encode create");
    for id in 2..=9u64 {
        write_frame_bytes(
            &mut batch,
            &encode_request_bytes(
                &Request {
                    id,
                    op: Op::Cmd {
                        session: "s".into(),
                        cmd: SessionCommand::Snapshot,
                    },
                },
                FrameFormat::Json,
            ),
        )
        .expect("encode cmd");
    }
    // One syscall delivers the whole pipeline; the reactor batches the
    // session commands under a single lock acquisition.
    raw.write_all(&batch).expect("pipelined write");

    for want_id in 1..=9u64 {
        let payload = read_frame_bytes(&mut raw).expect("response frame");
        let resp = decode_response_bytes(&payload, FrameFormat::Json).expect("decode");
        assert_eq!(resp.id, want_id, "responses must arrive in request order");
        assert!(
            matches!(resp.body, Body::Ok(_)),
            "id {want_id}: {:?}",
            resp.body
        );
    }

    let mut client = Client::connect_tcp(&addr).expect("connect");
    client.shutdown().expect("shutdown");
    drop(client);
    server.wait();
}

/// Shutdown latency is reactor-bounded: once the last client is gone,
/// the drain completes promptly instead of riding out sleep loops or
/// the full drain grace.
#[test]
fn shutdown_latency_is_bounded() {
    let (server, addr) = serve(IoMode::Reactor, 0, 0);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    client.create("s", spec()).expect("create");
    client.shutdown().expect("shutdown op");
    drop(client);

    let start = Instant::now();
    server.wait();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "drain took {elapsed:?}; expected reactor-bounded shutdown"
    );
}
