#![warn(missing_docs)]

//! # dsnet-server — a long-lived multi-tenant simulation service
//!
//! This crate turns the `dsnet` library into a daemon: many concurrent,
//! fully isolated network sessions (tenants), each an executor over one
//! [`dsnet::SensorNetwork`], driven over a length-prefixed wire
//! protocol (JSON or negotiated binary payloads) on TCP and unix
//! sockets.
//!
//! ## Layers
//!
//! | module | what it provides |
//! |---|---|
//! | [`json`] | integer-only JSON value model + the binary codec (no external deps) |
//! | [`protocol`] | framing, request/response grammar, format negotiation, error taxonomy |
//! | [`host`] | the multi-tenant session host (capacity, drain, watch) |
//! | [`server`] | both I/O engines — the sharded `dsnet-netio` reactor (default) and the thread-per-connection fallback — plus graceful shutdown and SIGINT |
//! | [`client`] | blocking client + scripted session runner |
//! | [`perf`] | the `serve_sessions` ledger scenarios (600/5k/20k) |
//!
//! The readiness layer itself (poller, wakers, frame buffers, the
//! sharded reactor) lives below this crate in `dsnet-netio`, which
//! knows nothing about the wire grammar.
//!
//! ## Determinism contract
//!
//! A scripted command sequence executed through the daemon yields a
//! per-session event stream (`stream` op, [`dsnet::session::render_stream`]
//! with timing off) byte-identical to the same sequence applied directly
//! to a [`dsnet::NetSession`]. Both paths run the same executor; the
//! server adds transport, never semantics — on either engine
//! ([`server::IoMode`]) and under either payload format
//! ([`protocol::FrameFormat`]). CI pins this with the `server` and
//! `server-reactor` determinism-smoke axes; the cross-product
//! (engine × format) is asserted in `tests/reactor.rs`.

pub mod client;
pub mod host;
pub mod json;
pub mod perf;
pub mod protocol;
pub mod server;

pub use client::{run_script, Client, ClientError, ScriptReport};
pub use host::{Host, HostConfig, HostError, PeekReport};
pub use protocol::{
    Body, ErrKind, FrameFormat, Op, PayloadFault, Request, Response, WireError, MAX_FRAME,
};
pub use server::{install_sigint_handler, IoMode, ServeOptions, Server};
