#![warn(missing_docs)]

//! # dsnet-server — a long-lived multi-tenant simulation service
//!
//! This crate turns the `dsnet` library into a daemon: many concurrent,
//! fully isolated network sessions (tenants), each an executor over one
//! [`dsnet::SensorNetwork`], driven over a length-prefixed JSON wire
//! protocol on TCP and unix sockets.
//!
//! ## Layers
//!
//! | module | what it provides |
//! |---|---|
//! | [`json`] | integer-only JSON value model (no external deps) |
//! | [`protocol`] | framing, request/response grammar, error taxonomy |
//! | [`host`] | the multi-tenant session host (capacity, drain, watch) |
//! | [`server`] | TCP/unix listeners, graceful shutdown, SIGINT |
//! | [`client`] | blocking client + scripted session runner |
//! | [`perf`] | the `serve_sessions` ledger scenario |
//!
//! ## Determinism contract
//!
//! A scripted command sequence executed through the daemon yields a
//! per-session event stream (`stream` op, [`dsnet::session::render_stream`]
//! with timing off) byte-identical to the same sequence applied directly
//! to a [`dsnet::NetSession`]. Both paths run the same executor; the
//! server adds transport, never semantics. CI pins this with the
//! `server` determinism-smoke axis.

pub mod client;
pub mod host;
pub mod json;
pub mod perf;
pub mod protocol;
pub mod server;

pub use client::{run_script, Client, ClientError, ScriptReport};
pub use host::{Host, HostConfig, HostError, PeekReport};
pub use protocol::{Body, ErrKind, Op, Request, Response, WireError, MAX_FRAME};
pub use server::{install_sigint_handler, ServeOptions, Server};
