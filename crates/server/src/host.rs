//! The multi-tenant session host: named, fully isolated [`NetSession`]s
//! behind a capacity limit and a drain flag.
//!
//! The host is the transport-independent core of the daemon — the TCP and
//! unix listeners both dispatch into it, and tests drive it directly.
//! Each session lives in its own slot with its own lock, so commands to
//! different tenants execute concurrently; the outer map lock is held
//! only for lookup/insert/remove.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};

use dsnet::protocols::knowledge::NetKnowledge;
use dsnet::session::{render_record, render_stream};
use dsnet::{CommandRecord, NetSession, SessionCommand, SessionSpec};

use crate::protocol::ErrKind;

/// A typed host-level failure (maps 1:1 onto wire error kinds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostError {
    /// Classification (also the wire label).
    pub kind: ErrKind,
    /// Deterministic detail text.
    pub detail: String,
}

impl HostError {
    fn new(kind: ErrKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.detail)
    }
}

impl std::error::Error for HostError {}

/// Host capacity configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Maximum concurrently live sessions; creates past this answer
    /// [`ErrKind::Busy`].
    pub max_sessions: usize,
}

impl Default for HostConfig {
    fn default() -> Self {
        Self { max_sessions: 1024 }
    }
}

/// One tenant slot: the session plus its trace subscribers.
struct SessionSlot {
    session: RwLock<NetSession>,
    /// Watchers receive each applied record rendered as a deterministic
    /// event line. A send failure means the subscriber hung up; the
    /// sender is dropped on the next push.
    watchers: Mutex<Vec<mpsc::Sender<String>>>,
}

/// The multi-tenant host. Cheap to clone via [`Arc`]; all methods take
/// `&self`.
pub struct Host {
    cfg: HostConfig,
    draining: AtomicBool,
    sessions: RwLock<BTreeMap<String, Arc<SessionSlot>>>,
}

impl Host {
    /// Create an empty host.
    pub fn new(cfg: HostConfig) -> Self {
        Self {
            cfg,
            draining: AtomicBool::new(false),
            sessions: RwLock::new(BTreeMap::new()),
        }
    }

    /// Flip the host into draining mode: every subsequent create or
    /// command answers [`ErrKind::ShuttingDown`]; in-flight commands
    /// finish normally (they hold their slot lock until done).
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether the host is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.read().expect("sessions lock").len()
    }

    /// Configured capacity.
    pub fn max_sessions(&self) -> usize {
        self.cfg.max_sessions
    }

    fn slot(&self, name: &str) -> Result<Arc<SessionSlot>, HostError> {
        self.sessions
            .read()
            .expect("sessions lock")
            .get(name)
            .cloned()
            .ok_or_else(|| HostError::new(ErrKind::UnknownSession, format!("no session '{name}'")))
    }

    fn reject_if_draining(&self) -> Result<(), HostError> {
        if self.is_draining() {
            Err(HostError::new(
                ErrKind::ShuttingDown,
                "host is draining; no new work accepted",
            ))
        } else {
            Ok(())
        }
    }

    /// Create a session. Fails with [`ErrKind::Busy`] at capacity,
    /// [`ErrKind::DuplicateSession`] on a name clash, and
    /// [`ErrKind::ShuttingDown`] while draining.
    pub fn create(&self, name: &str, spec: SessionSpec) -> Result<(), HostError> {
        self.reject_if_draining()?;
        if name.is_empty() {
            return Err(HostError::new(
                ErrKind::MalformedFrame,
                "session name must be non-empty",
            ));
        }
        // Build the network outside the map lock — construction is the
        // expensive part and must not serialize unrelated tenants.
        // Capacity is re-checked under the write lock, so a burst of
        // concurrent creates can overshoot only transiently, never in
        // the committed map.
        {
            let sessions = self.sessions.read().expect("sessions lock");
            if sessions.len() >= self.cfg.max_sessions {
                return Err(HostError::new(
                    ErrKind::Busy,
                    format!("session limit {} reached", self.cfg.max_sessions),
                ));
            }
            if sessions.contains_key(name) {
                return Err(HostError::new(
                    ErrKind::DuplicateSession,
                    format!("session '{name}' already exists"),
                ));
            }
        }
        let session = NetSession::new(spec)
            .map_err(|e| HostError::new(ErrKind::CommandRejected, format!("build failed: {e}")))?;
        let slot = Arc::new(SessionSlot {
            session: RwLock::new(session),
            watchers: Mutex::new(Vec::new()),
        });
        let mut sessions = self.sessions.write().expect("sessions lock");
        if sessions.len() >= self.cfg.max_sessions {
            return Err(HostError::new(
                ErrKind::Busy,
                format!("session limit {} reached", self.cfg.max_sessions),
            ));
        }
        if sessions.contains_key(name) {
            return Err(HostError::new(
                ErrKind::DuplicateSession,
                format!("session '{name}' already exists"),
            ));
        }
        sessions.insert(name.to_string(), slot);
        Ok(())
    }

    /// Destroy a session, dropping its network and disconnecting its
    /// watchers. Allowed while draining (it frees capacity).
    pub fn destroy(&self, name: &str) -> Result<(), HostError> {
        self.sessions
            .write()
            .expect("sessions lock")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| HostError::new(ErrKind::UnknownSession, format!("no session '{name}'")))
    }

    /// Apply one command to a session and return its record. Watchers
    /// receive the record as a deterministic event line.
    pub fn apply(&self, name: &str, cmd: &SessionCommand) -> Result<CommandRecord, HostError> {
        self.reject_if_draining()?;
        let slot = self.slot(name)?;
        let record = slot.session.write().expect("session lock").apply(cmd);
        let line = render_record(&record, false);
        let mut watchers = slot.watchers.lock().expect("watchers lock");
        watchers.retain(|tx| tx.send(line.clone()).is_ok());
        Ok(record)
    }

    /// Render a session's full deterministic event stream (the
    /// byte-identical server-vs-library contract surface).
    pub fn stream(&self, name: &str) -> Result<String, HostError> {
        let slot = self.slot(name)?;
        let session = slot.session.read().expect("session lock");
        Ok(render_stream(session.spec(), session.records(), false))
    }

    /// Subscribe to a session's trace: the returned receiver yields one
    /// deterministic event line per subsequently applied command, until
    /// the session is destroyed.
    pub fn watch(&self, name: &str) -> Result<mpsc::Receiver<String>, HostError> {
        let slot = self.slot(name)?;
        let (tx, rx) = mpsc::channel();
        slot.watchers.lock().expect("watchers lock").push(tx);
        Ok(rx)
    }

    /// Pin a session's current immutable knowledge snapshot: the
    /// structure version it was built at plus the shared
    /// [`Arc<NetKnowledge>`]. The snapshot never mutates — commands that
    /// change the structure bump the version and publish a *new* `Arc`
    /// (the PR 4 pessimistic-bump contract), so a reader can keep using
    /// a pinned snapshot consistently for as long as it holds the `Arc`.
    pub fn knowledge(&self, name: &str) -> Result<(u64, Arc<NetKnowledge>), HostError> {
        let slot = self.slot(name)?;
        let session = slot.session.read().expect("session lock");
        let net = session.network();
        Ok((net.structure_version(), net.knowledge()))
    }

    /// Read a session's current versioned knowledge snapshot without
    /// recording a command. Takes only the slot's read lock, so peeks
    /// run concurrently with each other (and pin whatever immutable
    /// `Arc<NetKnowledge>` version is current).
    pub fn peek(&self, name: &str) -> Result<PeekReport, HostError> {
        let slot = self.slot(name)?;
        let session = slot.session.read().expect("session lock");
        let net = session.network();
        let k = net.knowledge();
        let (hits, misses) = net.knowledge_stats();
        Ok(PeekReport {
            version: net.structure_version(),
            nodes: k.nodes as u64,
            backbone: k.backbone_size as u64,
            height: u64::from(k.height),
            commands: session.records().len() as u64,
            cache_hits: hits,
            cache_misses: misses,
        })
    }
}

/// A read-only structure summary served from the knowledge cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeekReport {
    /// Current structure version.
    pub version: u64,
    /// Live node count in the knowledge snapshot.
    pub nodes: u64,
    /// Backbone size.
    pub backbone: u64,
    /// BT height.
    pub height: u64,
    /// Commands recorded so far.
    pub commands: u64,
    /// Knowledge-cache hits.
    pub cache_hits: u64,
    /// Knowledge-cache misses.
    pub cache_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnet::Protocol;

    fn small_spec(seed: u64) -> SessionSpec {
        SessionSpec {
            nodes: 24,
            seed,
            ..SessionSpec::default()
        }
    }

    fn bcast() -> SessionCommand {
        SessionCommand::Broadcast {
            protocol: Protocol::ImprovedCff,
            source: None,
            channels: 1,
            loss_ppm: 0,
            retries: 0,
            min_delivery_ppm: 0,
        }
    }

    #[test]
    fn create_apply_stream_destroy() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(7)).unwrap();
        let rec = host.apply("a", &bcast()).unwrap();
        assert!(rec.status.is_applied());
        let stream = host.stream("a").unwrap();
        assert_eq!(stream.lines().count(), 2, "{stream}");
        host.destroy("a").unwrap();
        assert_eq!(host.stream("a").unwrap_err().kind, ErrKind::UnknownSession);
    }

    #[test]
    fn sessions_are_isolated() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(7)).unwrap();
        host.create("b", small_spec(8)).unwrap();
        host.apply("a", &SessionCommand::Kill { node: 1 }).unwrap();
        let a = host.stream("a").unwrap();
        let b = host.stream("b").unwrap();
        assert_eq!(a.lines().count(), 2);
        assert_eq!(b.lines().count(), 1, "tenant b saw tenant a's command");
    }

    #[test]
    fn capacity_limit_answers_busy() {
        let host = Host::new(HostConfig { max_sessions: 2 });
        host.create("a", small_spec(1)).unwrap();
        host.create("b", small_spec(2)).unwrap();
        let err = host.create("c", small_spec(3)).unwrap_err();
        assert_eq!(err.kind, ErrKind::Busy);
        // Destroy frees capacity.
        host.destroy("a").unwrap();
        host.create("c", small_spec(3)).unwrap();
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(1)).unwrap();
        let err = host.create("a", small_spec(2)).unwrap_err();
        assert_eq!(err.kind, ErrKind::DuplicateSession);
    }

    #[test]
    fn draining_refuses_new_work_but_serves_reads() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(7)).unwrap();
        host.apply("a", &bcast()).unwrap();
        host.begin_drain();
        assert_eq!(
            host.create("b", small_spec(8)).unwrap_err().kind,
            ErrKind::ShuttingDown
        );
        assert_eq!(
            host.apply("a", &bcast()).unwrap_err().kind,
            ErrKind::ShuttingDown
        );
        // Reads and destroys still work so clients can collect results.
        assert!(host.stream("a").is_ok());
        assert!(host.peek("a").is_ok());
        host.destroy("a").unwrap();
    }

    #[test]
    fn watchers_see_subsequent_records() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(7)).unwrap();
        host.apply("a", &SessionCommand::Snapshot).unwrap();
        let rx = host.watch("a").unwrap();
        host.apply("a", &SessionCommand::Kill { node: 1 }).unwrap();
        host.apply("a", &SessionCommand::Snapshot).unwrap();
        let first = rx.recv().unwrap();
        let second = rx.recv().unwrap();
        assert!(first.contains("\"cmd\": \"kill\""), "{first}");
        assert!(second.contains("\"cmd\": \"snapshot\""), "{second}");
        // The pre-subscription snapshot was not replayed.
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn peek_reports_versions_without_recording() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(7)).unwrap();
        let before = host.peek("a").unwrap();
        host.apply("a", &SessionCommand::MoveOut { node: 1 })
            .unwrap();
        let after = host.peek("a").unwrap();
        assert!(after.version > before.version, "{before:?} -> {after:?}");
        assert_eq!(after.commands, 1);
        assert_eq!(
            host.stream("a").unwrap().lines().count(),
            2,
            "peek must not append records"
        );
    }
}
