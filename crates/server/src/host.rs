//! The multi-tenant session host: named, fully isolated [`NetSession`]s
//! behind a capacity limit and a drain flag.
//!
//! The host is the transport-independent core of the daemon — the TCP and
//! unix listeners both dispatch into it, and tests drive it directly.
//! Each session lives in its own slot with its own lock, so commands to
//! different tenants execute concurrently; the outer map lock is held
//! only for lookup/insert/remove.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};

use dsnet::protocols::knowledge::NetKnowledge;
use dsnet::session::{render_record, render_stream};
use dsnet::{CommandRecord, NetSession, SessionCommand, SessionSpec};

use crate::protocol::ErrKind;

/// A typed host-level failure (maps 1:1 onto wire error kinds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostError {
    /// Classification (also the wire label).
    pub kind: ErrKind,
    /// Deterministic detail text.
    pub detail: String,
}

impl HostError {
    fn new(kind: ErrKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.detail)
    }
}

impl std::error::Error for HostError {}

/// Host capacity configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Maximum concurrently live sessions; creates past this answer
    /// [`ErrKind::Busy`].
    pub max_sessions: usize,
}

impl Default for HostConfig {
    fn default() -> Self {
        Self { max_sessions: 1024 }
    }
}

/// One trace subscriber: either a channel drained by a dedicated
/// connection thread, or a callback invoked inline (the reactor pushes
/// the rendered line straight into a connection's write queue).
enum Watcher {
    Channel(mpsc::Sender<String>),
    Callback(Box<dyn FnMut(&str) -> bool + Send>),
}

impl Watcher {
    /// Deliver one line; false means the subscriber is gone.
    fn deliver(&mut self, line: &str) -> bool {
        match self {
            Watcher::Channel(tx) => tx.send(line.to_string()).is_ok(),
            Watcher::Callback(f) => f(line),
        }
    }
}

/// One tenant slot: the session plus its trace subscribers.
struct SessionSlot {
    session: RwLock<NetSession>,
    /// Watchers receive each applied record rendered as a deterministic
    /// event line. A delivery failure means the subscriber hung up; it
    /// is dropped on the next push.
    watchers: Mutex<Vec<Watcher>>,
}

/// The multi-tenant host. Cheap to clone via [`Arc`]; all methods take
/// `&self`.
pub struct Host {
    cfg: HostConfig,
    draining: AtomicBool,
    sessions: RwLock<BTreeMap<String, Arc<SessionSlot>>>,
}

impl Host {
    /// Create an empty host.
    pub fn new(cfg: HostConfig) -> Self {
        Self {
            cfg,
            draining: AtomicBool::new(false),
            sessions: RwLock::new(BTreeMap::new()),
        }
    }

    /// Flip the host into draining mode: every subsequent create or
    /// command answers [`ErrKind::ShuttingDown`]; in-flight commands
    /// finish normally (they hold their slot lock until done).
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether the host is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.read().expect("sessions lock").len()
    }

    /// Configured capacity.
    pub fn max_sessions(&self) -> usize {
        self.cfg.max_sessions
    }

    fn slot(&self, name: &str) -> Result<Arc<SessionSlot>, HostError> {
        self.sessions
            .read()
            .expect("sessions lock")
            .get(name)
            .cloned()
            .ok_or_else(|| HostError::new(ErrKind::UnknownSession, format!("no session '{name}'")))
    }

    fn reject_if_draining(&self) -> Result<(), HostError> {
        if self.is_draining() {
            Err(HostError::new(
                ErrKind::ShuttingDown,
                "host is draining; no new work accepted",
            ))
        } else {
            Ok(())
        }
    }

    /// Create a session. Fails with [`ErrKind::Busy`] at capacity,
    /// [`ErrKind::DuplicateSession`] on a name clash, and
    /// [`ErrKind::ShuttingDown`] while draining.
    pub fn create(&self, name: &str, spec: SessionSpec) -> Result<(), HostError> {
        self.reject_if_draining()?;
        if name.is_empty() {
            return Err(HostError::new(
                ErrKind::MalformedFrame,
                "session name must be non-empty",
            ));
        }
        // Build the network outside the map lock — construction is the
        // expensive part and must not serialize unrelated tenants.
        // Capacity is re-checked under the write lock, so a burst of
        // concurrent creates can overshoot only transiently, never in
        // the committed map.
        {
            let sessions = self.sessions.read().expect("sessions lock");
            if sessions.len() >= self.cfg.max_sessions {
                return Err(HostError::new(
                    ErrKind::Busy,
                    format!("session limit {} reached", self.cfg.max_sessions),
                ));
            }
            if sessions.contains_key(name) {
                return Err(HostError::new(
                    ErrKind::DuplicateSession,
                    format!("session '{name}' already exists"),
                ));
            }
        }
        let session = NetSession::new(spec)
            .map_err(|e| HostError::new(ErrKind::CommandRejected, format!("build failed: {e}")))?;
        let slot = Arc::new(SessionSlot {
            session: RwLock::new(session),
            watchers: Mutex::new(Vec::new()),
        });
        let mut sessions = self.sessions.write().expect("sessions lock");
        if sessions.len() >= self.cfg.max_sessions {
            return Err(HostError::new(
                ErrKind::Busy,
                format!("session limit {} reached", self.cfg.max_sessions),
            ));
        }
        if sessions.contains_key(name) {
            return Err(HostError::new(
                ErrKind::DuplicateSession,
                format!("session '{name}' already exists"),
            ));
        }
        sessions.insert(name.to_string(), slot);
        Ok(())
    }

    /// Destroy a session, dropping its network and disconnecting its
    /// watchers. Allowed while draining (it frees capacity).
    pub fn destroy(&self, name: &str) -> Result<(), HostError> {
        self.sessions
            .write()
            .expect("sessions lock")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| HostError::new(ErrKind::UnknownSession, format!("no session '{name}'")))
    }

    /// Apply one command to a session and return its record. Watchers
    /// receive the record as a deterministic event line. Equivalent to
    /// a one-element [`Host::apply_batch`] (it is one).
    pub fn apply(&self, name: &str, cmd: &SessionCommand) -> Result<CommandRecord, HostError> {
        self.apply_batch(name, std::slice::from_ref(cmd))
            .pop()
            .expect("one command yields one outcome")
    }

    /// Apply a run of commands to one session under a single slot-lock
    /// acquisition, returning one outcome per command in order.
    ///
    /// Semantically identical to calling [`Host::apply`] per command —
    /// the drain flag is re-checked before each one, so a drain landing
    /// mid-batch rejects the remainder with `shutting_down` exactly as
    /// it would reject separate requests. The payoff is lock traffic:
    /// a pipelined client's burst of commands costs one write-lock
    /// acquisition instead of one per command. Watcher lines are pushed
    /// after the session lock is released, in application order.
    pub fn apply_batch(
        &self,
        name: &str,
        cmds: &[SessionCommand],
    ) -> Vec<Result<CommandRecord, HostError>> {
        if cmds.is_empty() {
            return Vec::new();
        }
        let shutting_down = || {
            HostError::new(
                ErrKind::ShuttingDown,
                "host is draining; no new work accepted",
            )
        };
        // Match apply()'s check order: draining answers shutting_down
        // even for a session that doesn't exist.
        if self.is_draining() {
            return cmds.iter().map(|_| Err(shutting_down())).collect();
        }
        let slot = match self.slot(name) {
            Ok(slot) => slot,
            Err(e) => return cmds.iter().map(|_| Err(e.clone())).collect(),
        };
        let mut out = Vec::with_capacity(cmds.len());
        let mut lines = Vec::with_capacity(cmds.len());
        {
            let mut session = slot.session.write().expect("session lock");
            for cmd in cmds {
                if self.is_draining() {
                    out.push(Err(shutting_down()));
                    continue;
                }
                let record = session.apply(cmd);
                lines.push(render_record(&record, false));
                out.push(Ok(record));
            }
        }
        if !lines.is_empty() {
            let mut watchers = slot.watchers.lock().expect("watchers lock");
            for line in &lines {
                watchers.retain_mut(|w| w.deliver(line));
            }
        }
        out
    }

    /// Render a session's full deterministic event stream (the
    /// byte-identical server-vs-library contract surface).
    pub fn stream(&self, name: &str) -> Result<String, HostError> {
        let slot = self.slot(name)?;
        let session = slot.session.read().expect("session lock");
        Ok(render_stream(session.spec(), session.records(), false))
    }

    /// Subscribe to a session's trace: the returned receiver yields one
    /// deterministic event line per subsequently applied command, until
    /// the session is destroyed.
    pub fn watch(&self, name: &str) -> Result<mpsc::Receiver<String>, HostError> {
        let slot = self.slot(name)?;
        let (tx, rx) = mpsc::channel();
        slot.watchers
            .lock()
            .expect("watchers lock")
            .push(Watcher::Channel(tx));
        Ok(rx)
    }

    /// Subscribe to a session's trace with an inline callback: `sink`
    /// runs once per subsequently applied command (under the slot's
    /// watcher lock, after the session lock is released — keep it
    /// cheap and non-blocking, e.g. a [`dsnet_netio::PushHandle`]
    /// enqueue). Returning false unsubscribes.
    pub fn watch_fn(
        &self,
        name: &str,
        sink: impl FnMut(&str) -> bool + Send + 'static,
    ) -> Result<(), HostError> {
        let slot = self.slot(name)?;
        slot.watchers
            .lock()
            .expect("watchers lock")
            .push(Watcher::Callback(Box::new(sink)));
        Ok(())
    }

    /// Pin a session's current immutable knowledge snapshot: the
    /// structure version it was built at plus the shared
    /// [`Arc<NetKnowledge>`]. The snapshot never mutates — commands that
    /// change the structure bump the version and publish a *new* `Arc`
    /// (the PR 4 pessimistic-bump contract), so a reader can keep using
    /// a pinned snapshot consistently for as long as it holds the `Arc`.
    pub fn knowledge(&self, name: &str) -> Result<(u64, Arc<NetKnowledge>), HostError> {
        let slot = self.slot(name)?;
        let session = slot.session.read().expect("session lock");
        let net = session.network();
        Ok((net.structure_version(), net.knowledge()))
    }

    /// Read a session's current versioned knowledge snapshot without
    /// recording a command. Takes only the slot's read lock, so peeks
    /// run concurrently with each other (and pin whatever immutable
    /// `Arc<NetKnowledge>` version is current).
    pub fn peek(&self, name: &str) -> Result<PeekReport, HostError> {
        let slot = self.slot(name)?;
        let session = slot.session.read().expect("session lock");
        let net = session.network();
        let k = net.knowledge();
        let (hits, misses, patched) = net.knowledge_stats();
        Ok(PeekReport {
            version: net.structure_version(),
            nodes: k.nodes as u64,
            backbone: k.backbone_size as u64,
            height: u64::from(k.height),
            commands: session.records().len() as u64,
            cache_hits: hits,
            cache_misses: misses,
            cache_patched: patched,
        })
    }
}

/// A read-only structure summary served from the knowledge cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeekReport {
    /// Current structure version.
    pub version: u64,
    /// Live node count in the knowledge snapshot.
    pub nodes: u64,
    /// Backbone size.
    pub backbone: u64,
    /// BT height.
    pub height: u64,
    /// Commands recorded so far.
    pub commands: u64,
    /// Knowledge-cache hits.
    pub cache_hits: u64,
    /// Knowledge-cache misses.
    pub cache_misses: u64,
    /// Misses served by the dirty-scoped patch path (subset of misses).
    pub cache_patched: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnet::Protocol;

    fn small_spec(seed: u64) -> SessionSpec {
        SessionSpec {
            nodes: 24,
            seed,
            ..SessionSpec::default()
        }
    }

    fn bcast() -> SessionCommand {
        SessionCommand::Broadcast {
            protocol: Protocol::ImprovedCff,
            source: None,
            channels: 1,
            loss_ppm: 0,
            retries: 0,
            min_delivery_ppm: 0,
        }
    }

    #[test]
    fn create_apply_stream_destroy() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(7)).unwrap();
        let rec = host.apply("a", &bcast()).unwrap();
        assert!(rec.status.is_applied());
        let stream = host.stream("a").unwrap();
        assert_eq!(stream.lines().count(), 2, "{stream}");
        host.destroy("a").unwrap();
        assert_eq!(host.stream("a").unwrap_err().kind, ErrKind::UnknownSession);
    }

    #[test]
    fn sessions_are_isolated() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(7)).unwrap();
        host.create("b", small_spec(8)).unwrap();
        host.apply("a", &SessionCommand::Kill { node: 1 }).unwrap();
        let a = host.stream("a").unwrap();
        let b = host.stream("b").unwrap();
        assert_eq!(a.lines().count(), 2);
        assert_eq!(b.lines().count(), 1, "tenant b saw tenant a's command");
    }

    #[test]
    fn capacity_limit_answers_busy() {
        let host = Host::new(HostConfig { max_sessions: 2 });
        host.create("a", small_spec(1)).unwrap();
        host.create("b", small_spec(2)).unwrap();
        let err = host.create("c", small_spec(3)).unwrap_err();
        assert_eq!(err.kind, ErrKind::Busy);
        // Destroy frees capacity.
        host.destroy("a").unwrap();
        host.create("c", small_spec(3)).unwrap();
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(1)).unwrap();
        let err = host.create("a", small_spec(2)).unwrap_err();
        assert_eq!(err.kind, ErrKind::DuplicateSession);
    }

    #[test]
    fn draining_refuses_new_work_but_serves_reads() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(7)).unwrap();
        host.apply("a", &bcast()).unwrap();
        host.begin_drain();
        assert_eq!(
            host.create("b", small_spec(8)).unwrap_err().kind,
            ErrKind::ShuttingDown
        );
        assert_eq!(
            host.apply("a", &bcast()).unwrap_err().kind,
            ErrKind::ShuttingDown
        );
        // Reads and destroys still work so clients can collect results.
        assert!(host.stream("a").is_ok());
        assert!(host.peek("a").is_ok());
        host.destroy("a").unwrap();
    }

    #[test]
    fn watchers_see_subsequent_records() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(7)).unwrap();
        host.apply("a", &SessionCommand::Snapshot).unwrap();
        let rx = host.watch("a").unwrap();
        host.apply("a", &SessionCommand::Kill { node: 1 }).unwrap();
        host.apply("a", &SessionCommand::Snapshot).unwrap();
        let first = rx.recv().unwrap();
        let second = rx.recv().unwrap();
        assert!(first.contains("\"cmd\": \"kill\""), "{first}");
        assert!(second.contains("\"cmd\": \"snapshot\""), "{second}");
        // The pre-subscription snapshot was not replayed.
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn apply_batch_matches_sequential_applies() {
        let a = Host::new(HostConfig::default());
        let b = Host::new(HostConfig::default());
        a.create("s", small_spec(7)).unwrap();
        b.create("s", small_spec(7)).unwrap();
        let cmds = vec![
            bcast(),
            SessionCommand::Kill { node: 1 },
            SessionCommand::Snapshot,
            SessionCommand::Revive { node: 1 },
        ];
        let sequential: Vec<_> = cmds.iter().map(|c| a.apply("s", c)).collect();
        let batched = b.apply_batch("s", &cmds);
        assert_eq!(batched.len(), sequential.len());
        for (lhs, rhs) in sequential.iter().zip(batched.iter()) {
            // wall_us is timing; everything else is deterministic.
            let mut lhs = lhs.as_ref().unwrap().clone();
            let mut rhs = rhs.as_ref().unwrap().clone();
            lhs.wall_us = 0;
            rhs.wall_us = 0;
            assert_eq!(lhs, rhs);
        }
        assert_eq!(a.stream("s").unwrap(), b.stream("s").unwrap());
    }

    #[test]
    fn apply_batch_rejects_like_apply() {
        let host = Host::new(HostConfig::default());
        let outs = host.apply_batch("ghost", &[bcast(), bcast()]);
        assert_eq!(outs.len(), 2);
        for out in &outs {
            assert_eq!(out.as_ref().unwrap_err().kind, ErrKind::UnknownSession);
        }
        host.begin_drain();
        let outs = host.apply_batch("ghost", &[bcast()]);
        assert_eq!(
            outs[0].as_ref().unwrap_err().kind,
            ErrKind::ShuttingDown,
            "draining outranks unknown-session, matching apply()"
        );
        assert!(host.apply_batch("ghost", &[]).is_empty());
    }

    #[test]
    fn apply_batch_feeds_watchers_in_order() {
        let host = Host::new(HostConfig::default());
        host.create("s", small_spec(7)).unwrap();
        let rx = host.watch("s").unwrap();
        host.apply_batch(
            "s",
            &[SessionCommand::Kill { node: 1 }, SessionCommand::Snapshot],
        );
        let first = rx.recv().unwrap();
        let second = rx.recv().unwrap();
        assert!(first.contains("\"cmd\": \"kill\""), "{first}");
        assert!(second.contains("\"cmd\": \"snapshot\""), "{second}");
    }

    #[test]
    fn callback_watchers_deliver_and_unsubscribe() {
        use std::sync::atomic::AtomicUsize;
        let host = Host::new(HostConfig::default());
        host.create("s", small_spec(7)).unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let budget = Arc::new(AtomicUsize::new(2));
        let b = Arc::clone(&budget);
        host.watch_fn("s", move |line| {
            sink.lock().unwrap().push(line.to_string());
            b.fetch_sub(1, Ordering::SeqCst) > 1
        })
        .unwrap();
        host.apply("s", &SessionCommand::Kill { node: 1 }).unwrap();
        host.apply("s", &SessionCommand::Snapshot).unwrap();
        // Third apply: the callback unsubscribed after the second line.
        host.apply("s", &SessionCommand::Revive { node: 1 })
            .unwrap();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2, "{seen:?}");
        assert!(seen[0].contains("\"cmd\": \"kill\""));
        assert!(seen[1].contains("\"cmd\": \"snapshot\""));
        assert_eq!(
            host.watch_fn("ghost", |_| true).unwrap_err().kind,
            ErrKind::UnknownSession
        );
    }

    #[test]
    fn peek_reports_versions_without_recording() {
        let host = Host::new(HostConfig::default());
        host.create("a", small_spec(7)).unwrap();
        let before = host.peek("a").unwrap();
        host.apply("a", &SessionCommand::MoveOut { node: 1 })
            .unwrap();
        let after = host.peek("a").unwrap();
        assert!(after.version > before.version, "{before:?} -> {after:?}");
        assert_eq!(after.commands, 1);
        assert_eq!(
            host.stream("a").unwrap().lines().count(),
            2,
            "peek must not append records"
        );
    }
}
