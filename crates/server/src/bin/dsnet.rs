//! `dsnet` — command-line front end for the reproduction.
//!
//! ```text
//! dsnet stats     --nodes 300 --seed 7 [--field 10]
//! dsnet broadcast --nodes 300 --seed 7 [--protocol cff|cff1|rcff|dfo] [--channels k]
//!                 [--source id] [--loss p0.05] [--retries R]
//! dsnet multicast --nodes 300 --seed 7 --density 0.1 [--reliable]
//! dsnet churn     --nodes 200 --seed 7 --epochs 10
//! dsnet render    --nodes 250 --seed 7 --out network.svg
//! dsnet campaign  --ns 100,200 --reps 5 --protocols cff,cff1,rcff,dfo \
//!                 [--channels 1,2] [--failures none,bb3@1,bb3@1+10] [--churn none,j5l2] \
//!                 [--loss none,p0.05] [--repair off,on] \
//!                 [--mobility none,rwp0.05x20p2,gm0.05x20] [--retries R] \
//!                 [--threads T] [--json FILE] [--csv FILE] [--trials] [--quiet] \
//!                 [--journal FILE | --resume FILE]
//! dsnet perf      [--quick] [--threads T] [--out BENCH.json] [--date YYYY-MM-DD] \
//!                 [--compare BASELINE.json] [--max-regress 0.15] [--quiet]
//! dsnet scale     --nodes 10000 --seed 7 [--threads T] [--shards CELLS] \
//!                 [--protocol cff|cff1|rcff|dfo] [--channels k] [--quiet]
//! dsnet serve     [--tcp ADDR] [--unix PATH] [--max-sessions N] \
//!                 [--io reactor|threads] [--shards N] [--poll-ms MS] [--quiet]
//! dsnet client    (--tcp ADDR | --unix PATH) [--session NAME] [--binary] \
//!                 (--ping | --create | --destroy | --script FILE [--keep] | \
//!                  --stream | --peek | --watch [--count K] | --shutdown) \
//!                 [--nodes N] [--seed S] [--field SIDE] [--groups G] [--density P]
//! dsnet direct    --script FILE [--nodes N] [--seed S] [--field SIDE] \
//!                 [--groups G] [--density P]
//! ```
//!
//! Every command is deterministic per `--seed`; `campaign` artifacts are
//! additionally byte-identical for any `--threads` value, and `scale`
//! prints the full traced event stream of one density-scaled broadcast —
//! byte-identical for any `--threads`/`--shards` value, which is exactly
//! what the `scale` determinism-smoke axis diffs. `client
//! --script` against a live daemon and `direct --script` print the same
//! deterministic event stream for the same spec and script — CI diffs
//! the two (the server determinism-smoke axis).
//!
//! `campaign --journal FILE` appends a crash-consistent intent/commit
//! record per trial to an fsync'd journal; after a crash, `campaign
//! --resume FILE` (same spec flags) skips the committed trials and
//! provably emits the artifacts an uninterrupted run would have — the
//! `resume` determinism-smoke axis kills a campaign at an injected
//! crash point and diffs exactly that.

use dsnet::campaign_engine::{
    parse_repair, render_csv, render_json, render_trials_csv, spec_fingerprint, write_artifact,
    CampaignSpec, ChurnTemplate, FailureTemplate, Journal, LossSpec, MobilitySpec, Progress,
    ProtocolSpec, TrialRecord,
};
use dsnet::protocols::runner::{run_multicast_reliable, RunConfig};
use dsnet::session::render_stream;
use dsnet::viz::{render_svg, VizOptions};
use dsnet::{GroupPlan, NetSession, NetworkBuilder, Protocol, SensorNetwork, SessionSpec};
use dsnet_graph::NodeId;
use dsnet_radio::LossModel;
use dsnet_server::protocol::parse_script;
use dsnet_server::{run_script, Client, ClientError, FrameFormat, IoMode, ServeOptions, Server};
use std::io::Write as _;
use std::path::PathBuf;

struct Args {
    nodes: usize,
    seed: u64,
    field: f64,
    protocol: Protocol,
    channels: u8,
    source: Option<u32>,
    density: f64,
    reliable: bool,
    epochs: u32,
    out: String,
    // campaign-only axes and outputs
    ns: Vec<usize>,
    reps: u64,
    protocols: Vec<ProtocolSpec>,
    channel_set: Vec<u8>,
    failures: Vec<FailureTemplate>,
    churn: Vec<ChurnTemplate>,
    losses: Vec<LossSpec>,
    repair: Vec<bool>,
    mobility: Vec<MobilitySpec>,
    retries: u32,
    threads: usize,
    json: Option<String>,
    csv: Option<String>,
    journal: Option<String>,
    resume: Option<String>,
    trials: bool,
    no_trace: bool,
    quiet: bool,
    // perf-only
    quick: bool,
    date: Option<String>,
    compare: Option<String>,
    max_regress: f64,
    // serve/client-only
    tcp: Option<String>,
    unix_sock: Option<String>,
    max_sessions: usize,
    io: IoMode,
    shards: usize,
    poll_ms: u64,
    binary: bool,
    session: Option<String>,
    script: Option<String>,
    action: Option<&'static str>,
    keep: bool,
    count: usize,
    groups: u16,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            nodes: 300,
            seed: 2007,
            field: 10.0,
            protocol: Protocol::ImprovedCff,
            channels: 1,
            source: None,
            density: 0.1,
            reliable: false,
            epochs: 10,
            out: "network.svg".into(),
            ns: vec![100, 200, 300],
            reps: 3,
            protocols: vec![ProtocolSpec::ImprovedCff, ProtocolSpec::Dfo],
            channel_set: vec![1],
            failures: vec![FailureTemplate::None],
            churn: vec![ChurnTemplate::default()],
            losses: vec![LossSpec::none()],
            repair: vec![false],
            mobility: vec![MobilitySpec::None],
            retries: 2,
            threads: 0,
            json: None,
            csv: None,
            journal: None,
            resume: None,
            trials: false,
            no_trace: false,
            quiet: false,
            quick: false,
            date: None,
            compare: None,
            max_regress: 0.15,
            tcp: None,
            unix_sock: None,
            max_sessions: 0,
            io: IoMode::default(),
            shards: 0,
            poll_ms: 0,
            binary: false,
            session: None,
            script: None,
            action: None,
            keep: false,
            count: 0,
            groups: 0,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: dsnet <stats|broadcast|multicast|churn|render|campaign|perf|scale|serve|client|direct> \
         [--nodes N] [--seed S] [--field SIDE] [--protocol cff|cff1|rcff|dfo] \
         [--channels K] [--source ID] [--density P] [--reliable] \
         [--loss none|p<P>] [--retries R] [--epochs E] [--out FILE]\n\
         campaign axes: [--ns N1,N2,..] [--reps R] [--protocols cff,cff1,rcff,dfo] \
         [--channels K1,K2,..] [--failures none|bb<C>@<R>[+<D>]|any<C>@<R>[+<D>],..] \
         [--churn none|j<J>l<L>,..] [--loss none,p<P>,..] [--repair off,on] \
         [--mobility none|rwp<V>x<E>p<P>|gm<V>x<E>,..] \
         [--retries R] [--threads T] [--json FILE] [--csv FILE] \
         [--trials] [--no-trace] [--quiet] [--journal FILE | --resume FILE]\n\
         perf: dsnet perf [--quick] [--threads T] [--out FILE] [--date YYYY-MM-DD] \
         [--compare BASELINE.json] [--max-regress F] [--quiet]\n\
         scale: dsnet scale --nodes N --seed S [--threads T] [--shards CELLS] \
         [--protocol cff|cff1|rcff|dfo] [--channels K] [--quiet]\n\
         serve: dsnet serve [--tcp ADDR] [--unix PATH] [--max-sessions N] \
         [--io reactor|threads] [--shards N] [--poll-ms MS] [--quiet]\n\
         client: dsnet client (--tcp ADDR | --unix PATH) [--session NAME] [--binary] \
         (--ping | --create | --destroy | --script FILE [--keep] | --stream | \
         --peek | --watch [--count K] | --shutdown) \
         [--nodes N] [--seed S] [--field SIDE] [--groups G] [--density P]\n\
         direct: dsnet direct --script FILE [--nodes N] [--seed S] [--field SIDE] \
         [--groups G] [--density P]"
    );
    std::process::exit(2);
}

fn parse_list<T>(raw: &str, parse_one: impl Fn(&str) -> Option<T>) -> Vec<T> {
    let items: Vec<T> = raw.split(',').filter_map(|s| parse_one(s.trim())).collect();
    if items.is_empty() || items.len() != raw.split(',').count() {
        usage();
    }
    items
}

fn parse() -> (String, Args) {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    let mut a = Args::default();
    while let Some(flag) = argv.next() {
        let mut val = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--nodes" => a.nodes = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val().parse().unwrap_or_else(|_| usage()),
            "--field" => a.field = val().parse().unwrap_or_else(|_| usage()),
            "--channels" => {
                a.channel_set = parse_list(&val(), |s| s.parse().ok());
                a.channels = a.channel_set[0];
            }
            "--source" => a.source = Some(val().parse().unwrap_or_else(|_| usage())),
            "--density" => a.density = val().parse().unwrap_or_else(|_| usage()),
            "--epochs" => a.epochs = val().parse().unwrap_or_else(|_| usage()),
            "--out" => a.out = val(),
            "--reliable" => a.reliable = true,
            "--protocol" => {
                a.protocol = match val().as_str() {
                    "cff" => Protocol::ImprovedCff,
                    "cff1" => Protocol::BasicCff,
                    "rcff" | "reliable" => Protocol::ReliableCff,
                    "dfo" => Protocol::Dfo,
                    _ => usage(),
                }
            }
            "--loss" => a.losses = parse_list(&val(), LossSpec::parse),
            "--repair" => a.repair = parse_list(&val(), parse_repair),
            "--mobility" => a.mobility = parse_list(&val(), MobilitySpec::parse),
            "--retries" => a.retries = val().parse().unwrap_or_else(|_| usage()),
            "--ns" => a.ns = parse_list(&val(), |s| s.parse().ok()),
            "--reps" => a.reps = val().parse().unwrap_or_else(|_| usage()),
            "--protocols" => a.protocols = parse_list(&val(), ProtocolSpec::parse),
            "--failures" => a.failures = parse_list(&val(), FailureTemplate::parse),
            "--churn" => a.churn = parse_list(&val(), ChurnTemplate::parse),
            "--threads" => a.threads = val().parse().unwrap_or_else(|_| usage()),
            "--json" => a.json = Some(val()),
            "--csv" => a.csv = Some(val()),
            "--journal" => a.journal = Some(val()),
            "--resume" => a.resume = Some(val()),
            "--trials" => a.trials = true,
            "--no-trace" => a.no_trace = true,
            "--quiet" => a.quiet = true,
            "--quick" => a.quick = true,
            "--date" => a.date = Some(val()),
            "--compare" => a.compare = Some(val()),
            "--max-regress" => a.max_regress = val().parse().unwrap_or_else(|_| usage()),
            "--tcp" => a.tcp = Some(val()),
            "--unix" => a.unix_sock = Some(val()),
            "--max-sessions" => a.max_sessions = val().parse().unwrap_or_else(|_| usage()),
            "--io" => a.io = IoMode::from_label(&val()).unwrap_or_else(|| usage()),
            "--shards" => a.shards = val().parse().unwrap_or_else(|_| usage()),
            "--poll-ms" => a.poll_ms = val().parse().unwrap_or_else(|_| usage()),
            "--binary" => a.binary = true,
            "--session" => a.session = Some(val()),
            "--script" => {
                a.script = Some(val());
                a.action = Some("script");
            }
            "--ping" => a.action = Some("ping"),
            "--create" => a.action = Some("create"),
            "--destroy" => a.action = Some("destroy"),
            "--stream" => a.action = Some("stream"),
            "--peek" => a.action = Some("peek"),
            "--watch" => a.action = Some("watch"),
            "--shutdown" => a.action = Some("shutdown"),
            "--keep" => a.keep = true,
            "--count" => a.count = val().parse().unwrap_or_else(|_| usage()),
            "--groups" => a.groups = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    (cmd, a)
}

/// Render a duration estimate compactly (`42s`, `3m07s`, `2h15m`).
fn fmt_eta(secs: f64) -> String {
    if !secs.is_finite() || secs < 0.0 {
        return "?".into();
    }
    let s = secs.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

fn run_campaign_cmd(a: &Args) {
    let spec = CampaignSpec {
        name: "cli".into(),
        field_side: a.field,
        ns: a.ns.clone(),
        reps: a.reps,
        base_seed: a.seed,
        protocols: a.protocols.clone(),
        channels: a.channel_set.clone(),
        failures: a.failures.clone(),
        churn: a.churn.clone(),
        losses: a.losses.clone(),
        repair: a.repair.clone(),
        mobility: a.mobility.clone(),
        max_retries: a.retries,
        record_trace: !a.no_trace,
    };

    // Journaling: --journal starts a fresh crash-consistent journal,
    // --resume validates an existing one against this exact spec and
    // prefills the trials it already commits.
    let journal_fail = |e: dsnet::campaign_engine::JournalError| -> ! {
        eprintln!("campaign: {e}");
        std::process::exit(1);
    };
    let (journal, completed): (Option<Journal>, Option<Vec<Option<TrialRecord>>>) =
        match (&a.journal, &a.resume) {
            (Some(_), Some(_)) => {
                eprintln!(
                    "campaign: --journal and --resume are mutually exclusive \
                     (--resume appends to the journal it reads)"
                );
                std::process::exit(2);
            }
            (Some(path), None) => {
                let j = Journal::create(
                    std::path::Path::new(path),
                    spec_fingerprint(&spec),
                    spec.trial_count(),
                )
                .unwrap_or_else(|e| journal_fail(e));
                (Some(j), None)
            }
            (None, Some(path)) => {
                let (j, completed) = Journal::resume(
                    std::path::Path::new(path),
                    spec_fingerprint(&spec),
                    spec.trial_count(),
                )
                .unwrap_or_else(|e| journal_fail(e));
                let done = completed.iter().filter(|c| c.is_some()).count();
                if !a.quiet {
                    eprintln!(
                        "campaign: resuming {path}: {done}/{} trials already committed",
                        spec.trial_count()
                    );
                }
                (Some(j), Some(completed))
            }
            (None, None) => (None, None),
        };

    // Progress line: trials done / total plus an ETA from a rolling
    // window of recent completions, so hour-long journaled runs are
    // observable without polling the journal file.
    let window: std::sync::Mutex<std::collections::VecDeque<(std::time::Instant, u64)>> =
        std::sync::Mutex::new(std::collections::VecDeque::new());
    let progress = |p: Progress<'_>| {
        let now = std::time::Instant::now();
        let mut w = window.lock().expect("progress window");
        w.push_back((now, p.done));
        while w.len() > 64 {
            w.pop_front();
        }
        let rate = if w.len() >= 2 {
            let (t0, d0) = w[0];
            let dt = now.duration_since(t0).as_secs_f64();
            let dd = p.done.saturating_sub(d0) as f64;
            (dd > 0.0 && dt > 0.0).then(|| dd / dt)
        } else {
            None
        };
        match rate {
            Some(rate) => eprint!(
                "\r[{}/{}] {:.1} trials/s, ETA {} — {}          ",
                p.done,
                p.total,
                rate,
                fmt_eta((p.total - p.done) as f64 / rate),
                p.trial.cell_label()
            ),
            None => eprint!(
                "\r[{}/{}] {}          ",
                p.done,
                p.total,
                p.trial.cell_label()
            ),
        }
        let _ = std::io::stderr().flush();
    };
    let result = dsnet::campaign::run_resumable(
        &spec,
        a.threads,
        if a.quiet { None } else { Some(&progress) },
        journal.as_ref(),
        completed,
    );
    if !a.quiet {
        eprintln!();
    }
    println!(
        "{} trials on {} threads in {:.2}s",
        result.trials.len(),
        result.threads,
        result.elapsed.as_secs_f64()
    );
    println!(
        "{:<70} {:>14} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "cell", "rounds", "p50", "p90", "delivery", "d-alive", "repair", "max-awake", "collisions"
    );
    for c in &result.cells {
        println!(
            "{:<70} {:>14} {:>7} {:>7} {:>9.3} {:>9.3} {:>9} {:>9.1} {:>10}",
            c.label(),
            c.rounds.to_string(),
            c.rounds_p50,
            c.rounds_p90,
            c.delivery.mean,
            c.delivery_alive.mean,
            c.repair_rounds
                .as_ref()
                .map_or("n/a".into(), |s| format!("{:.1}", s.mean)),
            c.max_awake.mean,
            c.collisions.map_or("n/a".into(), |v| v.to_string()),
        );
    }
    if let Some(path) = &a.json {
        let doc = render_json(&result, a.trials);
        write_artifact(path, doc.as_bytes()).expect("write JSON artifact");
        println!("wrote {path} ({} bytes)", doc.len());
    }
    if let Some(path) = &a.csv {
        let doc = render_csv(&result);
        write_artifact(path, doc.as_bytes()).expect("write CSV artifact");
        println!("wrote {path} ({} bytes)", doc.len());
        if a.trials {
            let tpath = format!("{path}.trials.csv");
            let tdoc = render_trials_csv(&result);
            write_artifact(&tpath, tdoc.as_bytes()).expect("write trials CSV artifact");
            println!("wrote {tpath} ({} bytes)", tdoc.len());
        }
    }
}

fn run_perf_cmd(a: &Args) {
    use dsnet::perf;
    let opts = perf::PerfOptions {
        quick: a.quick,
        threads: a.threads,
        date: a.date.clone(),
    };
    let mut ledger = perf::run_suite(&opts);
    // The core suite is serve-free (no dependency cycle); the CLI owns
    // appending the server load-test scenarios and refreshing peak RSS
    // to cover them.
    ledger
        .scenarios
        .push(dsnet_server::perf::run_serve_sessions(&opts));
    ledger
        .scenarios
        .push(dsnet_server::perf::run_serve_sessions_5k(&opts));
    ledger
        .scenarios
        .push(dsnet_server::perf::run_serve_sessions_20k(&opts));
    ledger.peak_rss_kb = perf::peak_rss_kb();
    if !a.quiet {
        eprintln!(
            "dsnet perf{} on {} thread(s), peak RSS {} KiB",
            if a.quick { " --quick" } else { "" },
            if a.threads == 0 {
                "auto".into()
            } else {
                a.threads.to_string()
            },
            ledger.peak_rss_kb
        );
        for s in &ledger.scenarios {
            eprintln!(
                "  {:<20} {:>4} n × {:>3} reps  {:>9} rounds  {:>8.1} ms  {:>10.0} rounds/s",
                s.name, s.nodes, s.reps, s.rounds, s.wall_ms, s.rounds_per_sec
            );
            if let Some(m) = &s.maintenance {
                eprintln!(
                    "  {:<20} diff {:.1} ms, repair {:.1} ms, slots {:.1} ms, audit {:.1} ms \
                     (scope {}); {} reconfigs, {} rehomed, cache {}/{}",
                    "  maintenance:",
                    m.diff_ms,
                    m.repair_ms,
                    m.slots_ms,
                    m.audit_ms,
                    m.audit_scope,
                    m.reconfigs,
                    m.rehomed,
                    m.cache_hits,
                    m.cache_hits + m.cache_misses
                );
            }
            if let Some(sv) = &s.server {
                eprintln!(
                    "  {:<20} {} sessions on {} client threads, {} cmds; \
                     {:.0} sessions/s, cmd p50 {:.0} us, p99 {:.0} us, p999 {:.0} us",
                    "  serve:",
                    sv.sessions,
                    sv.client_threads,
                    sv.commands,
                    sv.sessions_per_sec,
                    sv.cmd_p50_us,
                    sv.cmd_p99_us,
                    sv.cmd_p999_us
                );
            }
        }
    }
    // `--out` doubles as the render command's SVG path; its default is
    // not a ledger name, so treat it as unset here.
    let out = if a.out == "network.svg" {
        format!("BENCH_{}.json", ledger.date)
    } else {
        a.out.clone()
    };
    let doc = perf::render_ledger(&ledger, true);
    std::fs::write(&out, &doc).expect("write perf ledger");
    println!("wrote {out} ({} bytes)", doc.len());
    if let Some(baseline_path) = &a.compare {
        let baseline = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let cmp = perf::compare(&baseline, &ledger, a.max_regress);
        for note in &cmp.notes {
            println!("  {note}");
        }
        if cmp.passed() {
            println!(
                "perf gate PASSED vs {baseline_path} (max regression {:.0}%)",
                a.max_regress * 100.0
            );
        } else {
            for f in &cmp.failures {
                eprintln!("FAIL: {f}");
            }
            eprintln!("perf gate FAILED vs {baseline_path}");
            std::process::exit(1);
        }
    }
}

/// One traced broadcast over a density-scaled unit-disk field, with the
/// full deterministic event stream on stdout.
///
/// The field side is derived as `sqrt(nodes / 5)` (~5 nodes per unit²),
/// so per-node degree stays constant as `--nodes` grows — this is the
/// CLI surface of the 10k/100k perf scenarios. Delivery is sharded over
/// a spatial cell grid (`--shards`, default 64 cells) and executed on
/// `--threads` workers; by the engine's determinism contract the stdout
/// stream is byte-identical for every thread and cell count, and the
/// `scale` determinism-smoke axis diffs exactly that. Timing goes to
/// stderr, never stdout.
fn run_scale_cmd(a: &Args) {
    let side = (a.nodes as f64 / 5.0).sqrt();
    let t0 = std::time::Instant::now();
    let net = NetworkBuilder::paper_field(side, a.nodes, a.seed)
        .build()
        .expect("incremental deployments always build");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let threads = a.threads.max(1);
    let cells = if a.shards == 0 { 64 } else { a.shards };
    let plan = net.shard_plan(cells);
    let cell_count = plan.cell_count();
    let cfg = RunConfig {
        channels: a.channels,
        shards: Some(plan),
        threads,
        ..RunConfig::default()
    };
    let t1 = std::time::Instant::now();
    let (out, trace) = net.broadcast_traced(a.protocol, net.sink(), &cfg);
    let run_ms = t1.elapsed().as_secs_f64() * 1e3;
    if !a.quiet {
        eprintln!(
            "scale: n={} side={side:.1} — build {build_ms:.0} ms, broadcast {run_ms:.0} ms \
             on {threads} thread(s) over {cell_count} cells",
            a.nodes
        );
    }
    let stdout = std::io::stdout();
    let mut w = std::io::BufWriter::new(stdout.lock());
    writeln!(
        w,
        "scale n={} seed={} protocol={:?} channels={} cells={cell_count}",
        a.nodes, a.seed, a.protocol, a.channels
    )
    .expect("write stream");
    writeln!(
        w,
        "outcome rounds={} delivered={} targets={} max_awake={} collisions={}",
        out.rounds,
        out.delivered,
        out.targets,
        out.max_awake(),
        trace.collision_count()
    )
    .expect("write stream");
    for warn in trace.warnings() {
        writeln!(w, "warn {warn}").expect("write stream");
    }
    for ev in trace.events() {
        writeln!(w, "{ev:?}").expect("write stream");
    }
}

/// The session spec implied by the shared CLI flags (integer wire units:
/// `--field 10` → 10_000 milli, `--density 0.1` → 100_000 ppm).
fn spec_from_args(a: &Args) -> SessionSpec {
    SessionSpec {
        nodes: a.nodes,
        seed: a.seed,
        field_milli: (a.field * 1e3).round() as u32,
        groups: a.groups,
        membership_ppm: (a.density * 1e6).round() as u32,
    }
}

fn run_serve_cmd(a: &Args) {
    let opts = ServeOptions {
        tcp: a.tcp.clone(),
        unix: a.unix_sock.clone().map(PathBuf::from),
        max_sessions: a.max_sessions,
        io: a.io,
        shards: a.shards,
        poll_ms: a.poll_ms,
        ..ServeOptions::default()
    };
    dsnet_server::install_sigint_handler();
    let server = Server::start(&opts).unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        std::process::exit(2);
    });
    if let Some(addr) = server.tcp_addr() {
        println!("listening tcp {addr}");
    }
    if let Some(path) = &a.unix_sock {
        println!("listening unix {path}");
    }
    println!("ready ({} session slots)", server.host().max_sessions());
    let _ = std::io::stdout().flush();
    if !a.quiet {
        eprintln!(
            "dsnet-server up ({} engine); Ctrl-C or the wire 'shutdown' op drains and exits",
            a.io.label()
        );
    }
    server.wait();
    if !a.quiet {
        eprintln!("dsnet-server drained");
    }
}

fn client_ok<T>(r: Result<T, ClientError>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("client: {e}");
        std::process::exit(1);
    })
}

fn connect_client(a: &Args) -> Client {
    let conn = match (&a.tcp, &a.unix_sock) {
        (Some(addr), None) => Client::connect_tcp(addr),
        (None, Some(path)) => Client::connect_unix(std::path::Path::new(path)),
        _ => {
            eprintln!("client: exactly one of --tcp or --unix is required");
            std::process::exit(2);
        }
    };
    conn.unwrap_or_else(|e| {
        eprintln!("client: connect failed: {e}");
        std::process::exit(1);
    })
}

fn load_script(a: &Args) -> Vec<dsnet::SessionCommand> {
    let path = a.script.as_deref().unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read script {path}: {e}");
        std::process::exit(2);
    });
    parse_script(&text).unwrap_or_else(|e| {
        eprintln!("script {path}: {e}");
        std::process::exit(2);
    })
}

fn run_client_cmd(a: &Args) {
    let mut client = connect_client(a);
    if a.binary {
        client_ok(client.negotiate(FrameFormat::Binary));
    }
    let session = || {
        a.session.clone().unwrap_or_else(|| {
            eprintln!("client: this action needs --session NAME");
            std::process::exit(2);
        })
    };
    match a.action.unwrap_or_else(|| usage()) {
        "ping" => println!("{}", client_ok(client.ping()).render()),
        "create" => println!(
            "{}",
            client_ok(client.create(&session(), spec_from_args(a))).render()
        ),
        "destroy" => println!("{}", client_ok(client.destroy(&session())).render()),
        "stream" => print!("{}", client_ok(client.stream_text(&session()))),
        "peek" => println!("{}", client_ok(client.peek(&session())).render()),
        "shutdown" => println!("{}", client_ok(client.shutdown()).render()),
        "script" => {
            let cmds = load_script(a);
            let report = client_ok(run_script(
                &mut client,
                &session(),
                spec_from_args(a),
                &cmds,
                !a.keep,
            ));
            if !a.quiet {
                eprintln!(
                    "script: {} applied, {} rejected, {} rounds, {}/{} delivered",
                    report.applied,
                    report.rejected,
                    report.rounds,
                    report.delivered,
                    report.targets
                );
            }
            // Stdout carries exactly the deterministic stream so it can
            // be diffed against `dsnet direct --script`.
            print!("{}", report.stream);
        }
        "watch" => {
            let (count, mut seen) = (a.count, 0usize);
            client_ok(client.watch(&session(), |line| {
                println!("{line}");
                seen += 1;
                count == 0 || seen < count
            }));
        }
        _ => usage(),
    }
}

fn run_direct_cmd(a: &Args) {
    let cmds = load_script(a);
    let spec = spec_from_args(a);
    let mut session = NetSession::new(spec).unwrap_or_else(|e| {
        eprintln!("direct: build failed: {e}");
        std::process::exit(1);
    });
    for cmd in &cmds {
        session.apply(cmd);
    }
    print!(
        "{}",
        render_stream(session.spec(), session.records(), false)
    );
}

fn build(a: &Args, groups: bool) -> SensorNetwork {
    let mut b = NetworkBuilder::paper_field(a.field, a.nodes, a.seed);
    if groups {
        b = b.groups(GroupPlan {
            groups: 1,
            membership: a.density,
        });
    }
    b.build().expect("incremental deployments always build")
}

fn main() {
    let (cmd, a) = parse();
    match cmd.as_str() {
        "stats" => {
            let net = build(&a, false);
            let s = net.stats();
            println!("nodes            {}", s.nodes);
            println!("edges            {}", s.edges);
            println!("heads            {}", s.heads);
            println!("gateways         {}", s.gateways);
            println!("members          {}", s.members);
            println!("backbone size    {}", s.backbone_size);
            println!("backbone height  {}", s.backbone_height);
            println!("CNet height      {}", s.cnet_height);
            println!("D (max degree)   {}", s.max_degree);
            println!("d (BT degree)    {}", s.backbone_max_degree);
            println!("Δ (max l-slot)   {}", s.delta_l);
            println!("δ (max b-slot)   {}", s.delta_b);
        }
        "broadcast" => {
            let net = build(&a, false);
            let source = a.source.map(NodeId).unwrap_or_else(|| net.sink());
            let loss = a.losses[0];
            let cfg = RunConfig {
                channels: a.channels,
                loss: if loss.is_none() {
                    LossModel::none()
                } else {
                    LossModel::from_ppm(loss.ppm, a.seed)
                },
                max_retries: a.retries,
                ..Default::default()
            };
            let out = net.broadcast_from(a.protocol, source, &cfg);
            println!(
                "{:?} from {source}: {} rounds (bound {}), {}/{} delivered \
                 (ratio {:.3}, alive-ratio {:.3}), max awake {}, mean awake {:.1}",
                a.protocol,
                out.rounds,
                out.bound,
                out.delivered,
                out.targets,
                out.delivery_ratio(),
                out.delivery_ratio_alive(),
                out.max_awake(),
                out.energy.mean_awake
            );
        }
        "multicast" => {
            let net = build(&a, true);
            let out = if a.reliable {
                run_multicast_reliable(net.mcnet(), net.sink(), 0, &RunConfig::default())
            } else {
                net.multicast(0)
            };
            println!(
                "{} multicast (density {}): {} rounds, {}/{} delivered, radio-on {} rounds",
                if a.reliable { "reliable" } else { "paper" },
                a.density,
                out.rounds,
                out.delivered,
                out.targets,
                out.energy.total_listen + out.energy.total_tx
            );
        }
        "churn" => {
            use dsnet::geom::rng::{derive_seed, rng_from_seed};
            use dsnet::geom::Point2;
            use rand::Rng as _;
            let mut net = build(&a, false);
            let mut rng = rng_from_seed(derive_seed(a.seed, 0xC0DE));
            for epoch in 1..=a.epochs {
                for _ in 0..3 {
                    let nodes: Vec<NodeId> = net.net().tree().nodes().collect();
                    let _ = net.leave(nodes[rng.random_range(0..nodes.len())]);
                }
                for _ in 0..3 {
                    let nodes: Vec<NodeId> = net.net().tree().nodes().collect();
                    let p = net.position(nodes[rng.random_range(0..nodes.len())]);
                    let theta = rng.random_range(0.0..std::f64::consts::TAU);
                    let _ = net.join(
                        Point2::new(p.x + 0.3 * theta.cos(), p.y + 0.3 * theta.sin()),
                        &[],
                    );
                }
                net.check();
                let out = net.broadcast(Protocol::ImprovedCff);
                println!(
                    "epoch {epoch}: {} nodes, broadcast {} rounds, {}/{}",
                    net.len(),
                    out.rounds,
                    out.delivered,
                    out.targets
                );
            }
        }
        "render" => {
            let net = build(&a, false);
            let svg = render_svg(&net, &VizOptions::default());
            std::fs::write(&a.out, &svg).expect("write SVG");
            println!("wrote {} ({} bytes)", a.out, svg.len());
        }
        "campaign" => run_campaign_cmd(&a),
        "perf" => run_perf_cmd(&a),
        "scale" => run_scale_cmd(&a),
        "serve" => run_serve_cmd(&a),
        "client" => run_client_cmd(&a),
        "direct" => run_direct_cmd(&a),
        _ => usage(),
    }
}
