//! The wire protocol's JSON value model.
//!
//! The codec itself lives in [`dsnet_codec`] so the campaign journal can
//! share it without depending on this crate; this module re-exports it
//! under the path the protocol code (and its consumers) always used.

pub use dsnet_codec::binary;
pub use dsnet_codec::{obj, parse, Json, ParseError};
