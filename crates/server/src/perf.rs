//! The `serve_sessions` load-test scenarios: a live daemon under many
//! concurrent tenants, measured into the perf ledger.
//!
//! Three scale points share one body: `serve_sessions` (600 tenants,
//! the PR 6 baseline point), `serve_sessions_5k` (5000 — the reactor's
//! headline scale) and `serve_sessions_20k` (20000 — the stretch
//! point). Each reports client-observed per-command latency percentiles
//! (p50/p99/p999) and a log2-µs histogram alongside the deterministic
//! counters.
//!
//! The scenario boots an in-process [`Server`] on an ephemeral TCP port,
//! then drives it from worker threads, each holding its own [`Client`]
//! connection. Every tenant runs the same five-command script (two
//! broadcasts, a crash, a move-out, a snapshot) against its own small
//! network, and **all sessions stay alive until the load phase ends** —
//! the concurrency the ledger reports is real, not amortized.
//!
//! Deterministic counters (`sessions`, `commands`, `client_threads`,
//! plus the summed `rounds`/`delivered`/`targets` of the per-tenant
//! streams) are pure functions of the seeds and are gated exactly by
//! `perf --compare`; rates and latencies are timing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dsnet::geom::rng::derive_seed;
use dsnet::perf::{PerfOptions, ScenarioResult, ServeBreakdown};
use dsnet::{Protocol, SessionCommand, SessionSpec};

use crate::client::{run_script, Client, ScriptReport};
use crate::server::{ServeOptions, Server};

/// Client threads driving the load. Fixed (not `--threads`) so the
/// deterministic `client_threads` counter is invariant across perf
/// invocations.
const CLIENT_THREADS: usize = 8;

/// Nodes per tenant network: small enough that hundreds of concurrent
/// sessions fit comfortably, large enough that every command does real
/// cluster work.
const NODES_PER_SESSION: usize = 24;

/// Base seed for per-session seeds.
const BASE_SEED: u64 = 0xD5EE7;

/// The per-tenant script (see module docs).
fn script() -> Vec<SessionCommand> {
    vec![
        SessionCommand::Broadcast {
            protocol: Protocol::ImprovedCff,
            source: None,
            channels: 1,
            loss_ppm: 0,
            retries: 0,
            min_delivery_ppm: 0,
        },
        SessionCommand::Kill { node: 1 },
        SessionCommand::Broadcast {
            protocol: Protocol::Dfo,
            source: None,
            channels: 1,
            loss_ppm: 0,
            retries: 0,
            min_delivery_ppm: 0,
        },
        SessionCommand::MoveOut { node: 2 },
        SessionCommand::Snapshot,
    ]
}

/// Run the `serve_sessions` scenario with the suite's standard sizes
/// (600 concurrent sessions full, 120 quick) and best-of timing passes
/// matching the core suite (5 full, 1 quick).
pub fn run_serve_sessions(opts: &PerfOptions) -> ScenarioResult {
    let sessions = if opts.quick { 120 } else { 600 };
    let passes = if opts.quick { 1 } else { 5 };
    run_serve_with("serve_sessions", sessions, passes)
}

/// The 5k-resident-session scenario: the reactor's headline scale point.
/// Full runs host 5000 concurrent sessions over 2 timing passes; quick
/// runs shrink to 1000 over 1 pass (quick ledgers only compare to quick
/// ledgers, as everywhere in the suite).
pub fn run_serve_sessions_5k(opts: &PerfOptions) -> ScenarioResult {
    let (sessions, passes) = if opts.quick { (1_000, 1) } else { (5_000, 2) };
    run_serve_with("serve_sessions_5k", sessions, passes)
}

/// The 20k-resident-session scenario: the reactor's stretch scale point,
/// single-pass (one boot of 20000 tenants is the measurement; repeating
/// it buys noise reduction at 4× the suite cost). Quick runs use 2000.
pub fn run_serve_sessions_20k(opts: &PerfOptions) -> ScenarioResult {
    let sessions = if opts.quick { 2_000 } else { 20_000 };
    run_serve_with("serve_sessions_20k", sessions, 1)
}

/// One deterministic counter tuple, asserted stable across passes.
type Counters = (u64, u64, u64, u64, u64);

/// Parameterized scenario body (unit tests use small sizes).
pub fn run_serve_with(name: &'static str, sessions: usize, passes: u32) -> ScenarioResult {
    let mut counters: Option<Counters> = None;
    let mut best_secs = f64::INFINITY;
    let mut best_latencies: Vec<u64> = Vec::new();
    for _ in 0..passes {
        let (c, secs, latencies) = one_pass(sessions);
        match counters {
            None => counters = Some(c),
            Some(prev) => assert_eq!(
                prev, c,
                "serve_sessions: deterministic counters drifted between timing passes"
            ),
        }
        if secs < best_secs {
            best_secs = secs;
            best_latencies = latencies;
        }
    }
    let (commands, applied_plus_rejected, rounds, delivered, targets) =
        counters.expect("at least one pass");
    assert_eq!(
        commands, applied_plus_rejected,
        "every issued command must be recorded as applied or rejected"
    );
    best_latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if best_latencies.is_empty() {
            return 0.0;
        }
        let idx = ((best_latencies.len() - 1) as f64 * p).round() as usize;
        best_latencies[idx] as f64
    };
    // Log2 µs histogram: bucket i counts latencies in [2^i, 2^(i+1)).
    let mut hist: Vec<u64> = Vec::new();
    for &us in &best_latencies {
        let bucket = (u64::BITS - us.max(1).leading_zeros() - 1) as usize;
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    ScenarioResult {
        name,
        nodes: NODES_PER_SESSION as u64,
        reps: sessions as u64,
        rounds,
        delivered,
        targets,
        wall_ms: best_secs * 1e3,
        rounds_per_sec: if best_secs > 0.0 {
            rounds as f64 / best_secs
        } else {
            0.0
        },
        maintenance: None,
        server: Some(ServeBreakdown {
            sessions: sessions as u64,
            commands,
            client_threads: CLIENT_THREADS as u64,
            sessions_per_sec: if best_secs > 0.0 {
                sessions as f64 / best_secs
            } else {
                0.0
            },
            cmd_p50_us: pct(0.50),
            cmd_p99_us: pct(0.99),
            cmd_p999_us: pct(0.999),
            cmd_hist_us: hist,
        }),
    }
}

/// Boot a daemon, drive it with [`CLIENT_THREADS`] workers, assert the
/// full session population was concurrently live, tear down. Returns
/// (counters, load-phase seconds, command latencies).
fn one_pass(sessions: usize) -> (Counters, f64, Vec<u64>) {
    let server = Server::start(&ServeOptions {
        tcp: Some("127.0.0.1:0".into()),
        unix: None,
        max_sessions: sessions + 8,
        ..ServeOptions::default()
    })
    .expect("ephemeral TCP bind");
    let addr = server.tcp_addr().expect("tcp listener").to_string();
    let cmds = Arc::new(script());
    let next = Arc::new(AtomicUsize::new(0));

    let start = Instant::now();
    let mut workers = Vec::new();
    for _ in 0..CLIENT_THREADS {
        let (addr, cmds, next) = (addr.clone(), cmds.clone(), next.clone());
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).expect("connect to load server");
            let mut reports: Vec<ScriptReport> = Vec::new();
            loop {
                let idx = next.fetch_add(1, Ordering::SeqCst);
                if idx >= sessions {
                    return reports;
                }
                let spec = SessionSpec {
                    nodes: NODES_PER_SESSION,
                    seed: derive_seed(BASE_SEED, idx as u64),
                    ..SessionSpec::default()
                };
                let report = run_script(
                    &mut client,
                    &format!("load-{idx}"),
                    spec,
                    &cmds,
                    false, // keep alive: concurrency is the point
                )
                .expect("scripted session");
                reports.push(report);
            }
        }));
    }
    let reports: Vec<ScriptReport> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("load worker"))
        .collect();

    // Every tenant is still live here — the concurrency claim.
    assert_eq!(
        server.host().session_count(),
        sessions,
        "all sessions must be concurrently live at the end of the load phase"
    );

    // Teardown is part of the measured sessions/sec (create+drive+destroy).
    let mut client = Client::connect_tcp(&addr).expect("teardown connection");
    for idx in 0..sessions {
        client.destroy(&format!("load-{idx}")).expect("destroy");
    }
    let secs = start.elapsed().as_secs_f64();

    client.shutdown().expect("shutdown op");
    // Disconnect before wait(): draining connections are kept alive for
    // a grace period, and an open client would spend it in full.
    drop(client);
    server.wait();

    let mut commands = 0u64;
    let mut outcomes = 0u64;
    let (mut rounds, mut delivered, mut targets) = (0u64, 0u64, 0u64);
    let mut latencies = Vec::with_capacity(sessions * cmds.len());
    for r in &reports {
        commands += r.latencies_us.len() as u64;
        outcomes += r.applied + r.rejected;
        rounds += r.rounds;
        delivered += r.delivered;
        targets += r.targets;
        latencies.extend_from_slice(&r.latencies_us);
    }
    (
        (commands, outcomes, rounds, delivered, targets),
        secs,
        latencies,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_counters_are_stable_across_runs() {
        let a = run_serve_with("serve_sessions", 12, 1);
        let b = run_serve_with("serve_sessions", 12, 1);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.targets, b.targets);
        let (sa, sb) = (a.server.unwrap(), b.server.unwrap());
        assert_eq!(sa.sessions, 12);
        assert_eq!(sa.commands, 12 * 5);
        assert_eq!(sa.client_threads, CLIENT_THREADS as u64);
        assert_eq!((sa.sessions, sa.commands), (sb.sessions, sb.commands));
        assert!(sa.sessions_per_sec > 0.0);
        assert!(sa.cmd_p99_us >= sa.cmd_p50_us);
        assert!(sa.cmd_p999_us >= sa.cmd_p99_us);
        // Every measured command lands in exactly one histogram bucket.
        assert_eq!(sa.cmd_hist_us.iter().sum::<u64>(), sa.commands);
        assert_ne!(sa.cmd_hist_us.last(), Some(&0), "trailing buckets trimmed");
    }
}
