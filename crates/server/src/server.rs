//! The long-lived daemon: TCP and unix-socket listeners around a
//! [`Host`], with graceful shutdown.
//!
//! Two I/O engines share the listeners, the dispatch table, and the
//! shutdown path:
//!
//! - [`IoMode::Reactor`] (the default): a sharded readiness reactor
//!   ([`dsnet_netio`]) multiplexes every connection across
//!   `min(cores, 8)` event loops — no per-connection thread, no idle
//!   wakeups. Pipelined command bursts to one session are applied as a
//!   batch under a single slot-lock acquisition
//!   ([`Host::apply_batch`]), and watch subscribers push rendered
//!   event lines straight into the owning shard's write queue.
//! - [`IoMode::Threads`]: the original thread-per-connection engine
//!   with short read timeouts (kept as a fallback and as a behavioural
//!   reference — both engines produce byte-identical streams).
//!
//! Shutdown — whether from SIGINT, the wire `shutdown` op, or
//! [`Server::begin_shutdown`] — follows one path: the host starts
//! draining (in-flight commands finish, new sessions and commands are
//! refused with a typed `shutting_down` error, reads keep being
//! served) and accepting stops. [`Server::wait`] then gives open
//! connections a grace period to finish their reads and disconnect
//! before hard-stopping the stragglers at their next frame boundary.
//! The wait itself is readiness-driven: a stop wake-pipe and a SIGINT
//! self-pipe replace the old fixed-interval polling, so an idle daemon
//! burns no wakeups and shutdown latency is bounded by a single poll
//! wakeup rather than a sleep tick.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use dsnet::SessionCommand;
use dsnet_netio::sys::{poll_fds, PollFd, POLLIN};
use dsnet_netio::{
    wake_pair, Action, ConnCx, FrameError, Handler, HandlerFactory, Listener as NetListener,
    Reactor, ReactorConfig, WakeReader, Waker,
};

use crate::host::{Host, HostConfig, HostError};
use crate::json::{obj, Json};
use crate::protocol::{
    decode_request_bytes, encode_response_bytes, spec_to_json, write_frame_bytes, Body, ErrKind,
    FrameFormat, Op, PayloadFault, Request, Response, WireError, MAX_FRAME,
};

/// Default poll interval for stop-flag checks in the thread engine's
/// accept and read loops.
const POLL: Duration = Duration::from_millis(25);

/// Grace period for draining clients to finish their reads and hang up
/// before the hard stop.
const DRAIN_GRACE: Duration = Duration::from_secs(3);

/// Bound on the hard stop itself (thread engine: time for connection
/// threads to hit their next frame boundary; reactor: flush + close).
const HARD_STOP_BOUND: Duration = Duration::from_secs(1);

/// Which I/O engine drives connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// Sharded readiness reactor (event loops, batched dispatch).
    #[default]
    Reactor,
    /// Thread-per-connection with blocking reads (fallback engine).
    Threads,
}

impl IoMode {
    /// Stable CLI label.
    pub fn label(self) -> &'static str {
        match self {
            IoMode::Reactor => "reactor",
            IoMode::Threads => "threads",
        }
    }

    /// Parse a CLI label.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "reactor" => IoMode::Reactor,
            "threads" => IoMode::Threads,
            _ => return None,
        })
    }
}

/// How the daemon listens and how many tenants it admits.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// TCP bind address (e.g. `127.0.0.1:7app` or `127.0.0.1:0` for an
    /// ephemeral port). `None` = no TCP listener.
    pub tcp: Option<String>,
    /// Unix-socket path. `None` = no unix listener. The file is created
    /// on start and removed by [`Server::wait`].
    pub unix: Option<PathBuf>,
    /// Session capacity (`0` = the [`HostConfig`] default).
    pub max_sessions: usize,
    /// Connection engine (default [`IoMode::Reactor`]).
    pub io: IoMode,
    /// Reactor event loops (`0` = `min(cores, 8)`). Ignored by the
    /// thread engine.
    pub shards: usize,
    /// Close a connection parked mid-frame for this many milliseconds
    /// (`0` = the reactor default, 30 s). Connections idle *between*
    /// frames — watchers included — are never deadlined. Ignored by
    /// the thread engine, whose mid-frame reads block indefinitely.
    pub read_deadline_ms: u64,
    /// Thread-engine poll interval in milliseconds (`0` = 25). Ignored
    /// by the reactor, which has no polling loops.
    pub poll_ms: u64,
}

/// Shutdown trigger shared by every place that can request a stop: the
/// flag is the authoritative state, the waker gets [`Server::wait`]
/// out of its poll.
#[derive(Clone)]
struct StopSignal {
    stop: Arc<AtomicBool>,
    waker: Waker,
}

impl StopSignal {
    fn trigger(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

enum Engine {
    Reactor(Reactor),
    Threads {
        hard_stop: Arc<AtomicBool>,
        active_conns: Arc<AtomicUsize>,
        accept_threads: Vec<JoinHandle<()>>,
        poll: Duration,
    },
}

/// A running daemon. Dropping it does *not* stop the threads — call
/// [`Server::begin_shutdown`] then [`Server::wait`].
pub struct Server {
    host: Arc<Host>,
    signal: StopSignal,
    stop_rx: WakeReader,
    engine: Engine,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Bind the requested listeners and start serving. At least one of
    /// `tcp`/`unix` must be set.
    pub fn start(opts: &ServeOptions) -> std::io::Result<Server> {
        if opts.tcp.is_none() && opts.unix.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "serve needs a --tcp address or a --unix socket path",
            ));
        }
        let max_sessions = if opts.max_sessions == 0 {
            HostConfig::default().max_sessions
        } else {
            opts.max_sessions
        };
        let host = Arc::new(Host::new(HostConfig { max_sessions }));
        let (stop_waker, stop_rx) = wake_pair()?;
        let signal = StopSignal {
            stop: Arc::new(AtomicBool::new(false)),
            waker: stop_waker,
        };

        let tcp_listener = match &opts.tcp {
            None => None,
            Some(addr) => Some(TcpListener::bind(addr)?),
        };
        let tcp_addr = match &tcp_listener {
            None => None,
            Some(l) => Some(l.local_addr()?),
        };
        let unix_listener = match &opts.unix {
            None => None,
            Some(path) => {
                // A stale socket file from a crashed daemon blocks bind.
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Some(UnixListener::bind(path)?)
            }
        };

        let engine = match opts.io {
            IoMode::Reactor => {
                let mut listeners = Vec::new();
                if let Some(l) = tcp_listener {
                    listeners.push(NetListener::Tcp(l));
                }
                if let Some(l) = unix_listener {
                    listeners.push(NetListener::Unix(l));
                }
                let factory: HandlerFactory = {
                    let host = host.clone();
                    let signal = signal.clone();
                    Arc::new(move || {
                        Box::new(ConnHandler::new(host.clone(), signal.clone())) as Box<dyn Handler>
                    })
                };
                let config = ReactorConfig {
                    shards: opts.shards,
                    max_frame: MAX_FRAME as usize,
                    read_deadline: if opts.read_deadline_ms == 0 {
                        ReactorConfig::default().read_deadline
                    } else {
                        Some(Duration::from_millis(opts.read_deadline_ms))
                    },
                    ..ReactorConfig::default()
                };
                Engine::Reactor(Reactor::start(listeners, factory, config)?)
            }
            IoMode::Threads => {
                let poll = if opts.poll_ms == 0 {
                    POLL
                } else {
                    Duration::from_millis(opts.poll_ms)
                };
                let hard_stop = Arc::new(AtomicBool::new(false));
                let active_conns = Arc::new(AtomicUsize::new(0));
                let mut accept_threads = Vec::new();
                if let Some(listener) = tcp_listener {
                    listener.set_nonblocking(true)?;
                    let ctx = ThreadCtx {
                        host: host.clone(),
                        signal: signal.clone(),
                        hard_stop: hard_stop.clone(),
                        conns: active_conns.clone(),
                        poll,
                    };
                    accept_threads.push(std::thread::spawn(move || {
                        accept_loop(
                            move || match listener.accept() {
                                Ok((s, _)) => {
                                    s.set_nonblocking(false).ok();
                                    s.set_nodelay(true).ok();
                                    Some(Ok(Box::new(s) as Box<dyn Conn>))
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                                Err(e) => Some(Err(e)),
                            },
                            ctx,
                        );
                    }));
                }
                if let Some(listener) = unix_listener {
                    listener.set_nonblocking(true)?;
                    let ctx = ThreadCtx {
                        host: host.clone(),
                        signal: signal.clone(),
                        hard_stop: hard_stop.clone(),
                        conns: active_conns.clone(),
                        poll,
                    };
                    accept_threads.push(std::thread::spawn(move || {
                        accept_loop(
                            move || match listener.accept() {
                                Ok((s, _)) => {
                                    s.set_nonblocking(false).ok();
                                    Some(Ok(Box::new(s) as Box<dyn Conn>))
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                                Err(e) => Some(Err(e)),
                            },
                            ctx,
                        );
                    }));
                }
                Engine::Threads {
                    hard_stop,
                    active_conns,
                    accept_threads,
                    poll,
                }
            }
        };

        Ok(Server {
            host,
            signal,
            stop_rx,
            engine,
            tcp_addr,
            unix_path: opts.unix.clone(),
        })
    }

    /// The session host (tests drive it directly).
    pub fn host(&self) -> &Arc<Host> {
        &self.host
    }

    /// The bound TCP address, once listening (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Start the graceful drain: the host refuses new sessions and
    /// commands, accepting stops. Open connections keep serving reads
    /// until they disconnect or [`Server::wait`]'s grace period
    /// expires.
    pub fn begin_shutdown(&self) {
        self.host.begin_drain();
        if let Engine::Reactor(reactor) = &self.engine {
            reactor.begin_drain();
        }
        self.signal.trigger();
    }

    /// Whether shutdown has been requested (by any path).
    pub fn is_stopping(&self) -> bool {
        self.signal.is_stopped()
    }

    /// Block until shutdown is requested, then stop accepting and give
    /// open connections a bounded grace period to wind down. Removes
    /// the unix socket file.
    pub fn wait(mut self) {
        block_until_stop(&self.signal, &mut self.stop_rx);
        // begin_shutdown may have been called externally without
        // SIGINT; make sure the host drains either way.
        self.host.begin_drain();
        match self.engine {
            Engine::Reactor(reactor) => {
                reactor.begin_drain();
                // Grace: draining clients may still fetch streams; the
                // wait returns early once every connection is gone.
                reactor.wait_idle(DRAIN_GRACE);
                reactor.hard_stop();
                reactor.wait_idle(HARD_STOP_BOUND);
                reactor.join();
            }
            Engine::Threads {
                hard_stop,
                active_conns,
                accept_threads,
                poll,
            } => {
                for t in accept_threads {
                    let _ = t.join();
                }
                let deadline = std::time::Instant::now() + DRAIN_GRACE;
                while active_conns.load(Ordering::SeqCst) > 0
                    && std::time::Instant::now() < deadline
                {
                    std::thread::sleep(poll);
                }
                // Hard stop: remaining connection threads exit at their
                // next frame boundary / poll tick. Bounded wait so a
                // peer that went silent mid-frame cannot pin us here.
                hard_stop.store(true, Ordering::SeqCst);
                let deadline = std::time::Instant::now() + HARD_STOP_BOUND;
                while active_conns.load(Ordering::SeqCst) > 0
                    && std::time::Instant::now() < deadline
                {
                    std::thread::sleep(poll);
                }
            }
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Readiness-driven replacement for the old 25 ms stop-flag sleep
/// loop: block on the stop wake-pipe and the SIGINT self-pipe until
/// either fires. The SIGINT pipe is deliberately never drained — once
/// readable it stays readable, which makes the sticky `SIGINT` flag
/// and the poll agree forever after.
fn block_until_stop(signal: &StopSignal, stop_rx: &mut WakeReader) {
    loop {
        if signal.is_stopped() || sigint_received() {
            return;
        }
        let mut fds = vec![PollFd {
            fd: stop_rx.fd(),
            events: POLLIN,
            revents: 0,
        }];
        if let Some(fd) = sigint_pipe_fd() {
            fds.push(PollFd {
                fd,
                events: POLLIN,
                revents: 0,
            });
        }
        if poll_fds(&mut fds, -1).is_err() {
            // Poll itself failing is pathological; degrade to the old
            // sleep loop rather than spinning.
            std::thread::sleep(POLL);
        }
        stop_rx.drain();
    }
}

// ---- reactor engine -----------------------------------------------------

/// Per-connection protocol state for the reactor engine: the
/// negotiated frame format, watch mode, and the current command batch.
///
/// Consecutive `cmd` requests for the same session within one
/// readiness burst are applied through [`Host::apply_batch`] under a
/// single slot-lock acquisition; responses still go out one frame per
/// request, in request order. The batch never outlives the
/// [`Handler::on_frames`] call that opened it.
struct ConnHandler {
    host: Arc<Host>,
    signal: StopSignal,
    format: FrameFormat,
    watching: bool,
    batch_session: Option<String>,
    batch_ids: Vec<u64>,
    batch_cmds: Vec<SessionCommand>,
}

impl ConnHandler {
    fn new(host: Arc<Host>, signal: StopSignal) -> ConnHandler {
        ConnHandler {
            host,
            signal,
            format: FrameFormat::Json,
            watching: false,
            batch_session: None,
            batch_ids: Vec::new(),
            batch_cmds: Vec::new(),
        }
    }

    fn reply(&self, id: u64, body: Body, cx: &mut ConnCx<'_>) {
        cx.send(&encode_response_bytes(&Response { id, body }, self.format));
    }

    fn flush_cmds(&mut self, cx: &mut ConnCx<'_>) {
        let Some(session) = self.batch_session.take() else {
            return;
        };
        let ids = std::mem::take(&mut self.batch_ids);
        let cmds = std::mem::take(&mut self.batch_cmds);
        let outcomes = self.host.apply_batch(&session, &cmds);
        for (id, outcome) in ids.into_iter().zip(outcomes) {
            self.reply(id, cmd_outcome_body(outcome), cx);
        }
    }
}

impl Handler for ConnHandler {
    fn on_frames(&mut self, frames: Vec<Vec<u8>>, cx: &mut ConnCx<'_>) -> Action {
        if self.watching {
            // A watching connection is a one-way event stream; frames
            // sent after the watch request are dropped, matching the
            // thread engine (which stops reading entirely).
            return Action::Continue;
        }
        for frame in frames {
            let req = match decode_request_bytes(&frame, self.format) {
                Ok(req) => req,
                Err(fault) => {
                    self.flush_cmds(cx);
                    let keep = matches!(fault, PayloadFault::Grammar(_));
                    self.reply(
                        0,
                        Body::Err {
                            kind: ErrKind::MalformedFrame,
                            detail: fault.detail().to_string(),
                        },
                        cx,
                    );
                    if keep {
                        continue;
                    }
                    return Action::Close;
                }
            };
            match req.op {
                Op::Cmd { session, cmd } => {
                    if self.batch_session.as_deref() != Some(session.as_str()) {
                        self.flush_cmds(cx);
                        self.batch_session = Some(session);
                    }
                    self.batch_ids.push(req.id);
                    self.batch_cmds.push(cmd);
                }
                op => {
                    self.flush_cmds(cx);
                    match op {
                        Op::Frames { format } => {
                            // Ack in the old format, switch after.
                            self.reply(req.id, frames_ack(format), cx);
                            self.format = format;
                        }
                        Op::Watch { session } => {
                            let push = cx.push_handle();
                            let format = self.format;
                            let registered = self.host.watch_fn(&session, move |line| {
                                push.push(encode_response_bytes(
                                    &Response {
                                        id: 0,
                                        body: Body::Event(Json::Str(line.to_string())),
                                    },
                                    format,
                                ))
                            });
                            match registered {
                                Ok(()) => {
                                    // The ack is queued in this handler
                                    // call; pushes are merged between
                                    // handler calls, so it always
                                    // precedes the first event.
                                    self.reply(
                                        req.id,
                                        Body::Ok(obj(vec![("watching", Json::Str(session))])),
                                        cx,
                                    );
                                    self.watching = true;
                                    return Action::Continue;
                                }
                                Err(e) => self.reply(req.id, host_err_body(e), cx),
                            }
                        }
                        op => {
                            let body = op_body(&op, &self.host, &self.signal)
                                .expect("cmd/watch/frames handled above");
                            self.reply(req.id, body, cx);
                        }
                    }
                }
            }
        }
        self.flush_cmds(cx);
        Action::Continue
    }

    fn on_bad_frame(&mut self, err: &FrameError, cx: &mut ConnCx<'_>) {
        // Frame-level fault: report it, then the reactor closes —
        // framing is unrecoverable once the byte stream is misaligned.
        // Reuse the wire-error text the thread engine always sent.
        let detail = match err {
            FrameError::Oversized { len, max } => WireError::Oversized {
                len: *len as u32,
                max: *max as u32,
            }
            .to_string(),
        };
        cx.send(&encode_response_bytes(
            &Response {
                id: 0,
                body: Body::Err {
                    kind: ErrKind::MalformedFrame,
                    detail,
                },
            },
            self.format,
        ));
    }
}

// ---- thread engine ------------------------------------------------------

/// A bidirectional client connection (TCP or unix).
trait Conn: Read + Write + Send {
    fn set_read_timeout_conn(&self, d: Option<Duration>) -> std::io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout_conn(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(d)
    }
}

impl Conn for UnixStream {
    fn set_read_timeout_conn(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(d)
    }
}

/// Everything a thread-engine connection needs, cloned per accept.
#[derive(Clone)]
struct ThreadCtx {
    host: Arc<Host>,
    signal: StopSignal,
    hard_stop: Arc<AtomicBool>,
    conns: Arc<AtomicUsize>,
    poll: Duration,
}

fn accept_loop(mut accept: impl FnMut() -> Option<std::io::Result<Box<dyn Conn>>>, ctx: ThreadCtx) {
    while !ctx.signal.is_stopped() {
        match accept() {
            None => std::thread::sleep(ctx.poll),
            Some(Err(_)) => std::thread::sleep(ctx.poll),
            Some(Ok(stream)) => {
                let ctx = ctx.clone();
                ctx.conns.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    handle_conn(stream, &ctx);
                    ctx.conns.fetch_sub(1, Ordering::SeqCst);
                });
            }
        }
    }
}

/// Outcome of a stop-aware frame read.
enum FrameRead {
    Frame(Vec<u8>),
    Closed,
    Stopped,
}

/// Like [`crate::protocol::read_frame_bytes`] but wakes every read
/// timeout to check the hard-stop flag. At a frame boundary a hard stop
/// closes the connection; mid-frame the remaining bytes are awaited so
/// an in-flight request is never torn. The drain flag deliberately does
/// *not* end the read loop: draining clients may still fetch streams
/// and snapshots.
fn read_frame_stoppable(r: &mut impl Read, stop: &AtomicBool) -> Result<FrameRead, WireError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        if filled == 0 && stop.load(Ordering::SeqCst) {
            return Ok(FrameRead::Stopped);
        }
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Closed),
            Ok(0) => {
                return Err(WireError::Truncated {
                    got: filled,
                    want: 4,
                })
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    got: filled,
                    want: payload.len(),
                })
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(FrameRead::Frame(payload))
}

fn respond(
    stream: &mut dyn Conn,
    id: u64,
    body: Body,
    format: FrameFormat,
) -> Result<(), WireError> {
    let payload = encode_response_bytes(&Response { id, body }, format);
    let mut w = &mut *stream as &mut dyn Write;
    write_frame_bytes(&mut w, &payload)
}

fn handle_conn(mut stream: Box<dyn Conn>, ctx: &ThreadCtx) {
    let _ = stream.set_read_timeout_conn(Some(ctx.poll));
    let mut format = FrameFormat::Json;
    loop {
        let frame = match read_frame_stoppable(&mut stream, &ctx.hard_stop) {
            Ok(FrameRead::Frame(f)) => f,
            Ok(FrameRead::Closed | FrameRead::Stopped) => return,
            Err(WireError::Io(_)) => return,
            Err(e) => {
                // Frame-level fault: report it, then close — framing is
                // unrecoverable once the byte stream is misaligned.
                let _ = respond(
                    stream.as_mut(),
                    0,
                    Body::Err {
                        kind: ErrKind::MalformedFrame,
                        detail: e.to_string(),
                    },
                    format,
                );
                return;
            }
        };
        let req = match decode_request_bytes(&frame, format) {
            Ok(req) => req,
            Err(fault) => {
                let keep = matches!(fault, PayloadFault::Grammar(_));
                let _ = respond(
                    stream.as_mut(),
                    0,
                    Body::Err {
                        kind: ErrKind::MalformedFrame,
                        detail: fault.detail().to_string(),
                    },
                    format,
                );
                if keep {
                    // Grammar-level fault: the framing is intact, so
                    // the connection stays usable.
                    continue;
                }
                return;
            }
        };
        if let Op::Frames { format: next } = req.op {
            // Ack in the old format, switch after.
            if respond(stream.as_mut(), req.id, frames_ack(next), format).is_err() {
                return;
            }
            format = next;
            continue;
        }
        match dispatch(&req, &ctx.host, &ctx.signal) {
            Dispatch::Reply(body) => {
                if respond(stream.as_mut(), req.id, body, format).is_err() {
                    return;
                }
            }
            Dispatch::EnterWatch { ack, rx } => {
                if respond(stream.as_mut(), req.id, ack, format).is_err() {
                    return;
                }
                // The connection becomes a one-way event stream: each
                // applied record arrives as an id-0 event frame carrying
                // the deterministic record line.
                loop {
                    match rx.recv_timeout(ctx.poll) {
                        Ok(line) => {
                            let body = Body::Event(Json::Str(line));
                            if respond(stream.as_mut(), 0, body, format).is_err() {
                                return;
                            }
                        }
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                            if ctx.signal.is_stopped() {
                                return;
                            }
                        }
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
                    }
                }
            }
        }
    }
}

// ---- shared dispatch ----------------------------------------------------

fn host_err_body(e: HostError) -> Body {
    Body::Err {
        kind: e.kind,
        detail: e.detail,
    }
}

/// The `frames` op's ack body (sent in the pre-switch format).
fn frames_ack(format: FrameFormat) -> Body {
    Body::Ok(obj(vec![("format", Json::Str(format.label().into()))]))
}

/// Render one command outcome — the single rendering both engines and
/// both the single and batched apply paths share.
fn cmd_outcome_body(outcome: Result<dsnet::CommandRecord, HostError>) -> Body {
    match outcome {
        Ok(record) => {
            let fields: Vec<(String, Json)> = record
                .fields
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v)))
                .collect();
            match &record.status {
                dsnet::CommandStatus::Applied => Body::Ok(obj(vec![
                    ("seq", Json::Int(record.seq as i64)),
                    ("cmd", Json::Str(record.kind.to_string())),
                    ("attempts", Json::Int(i64::from(record.attempts))),
                    ("wall_us", Json::Int(record.wall_us as i64)),
                    ("fields", Json::Obj(fields)),
                ])),
                dsnet::CommandStatus::Rejected(reason) => Body::Err {
                    kind: ErrKind::CommandRejected,
                    detail: format!("seq {}: {reason}", record.seq),
                },
            }
        }
        Err(e) => host_err_body(e),
    }
}

enum Dispatch {
    Reply(Body),
    EnterWatch {
        ack: Body,
        rx: std::sync::mpsc::Receiver<String>,
    },
}

fn dispatch(req: &Request, host: &Arc<Host>, signal: &StopSignal) -> Dispatch {
    if let Op::Watch { session } = &req.op {
        return match host.watch(session) {
            Ok(rx) => Dispatch::EnterWatch {
                ack: Body::Ok(obj(vec![("watching", Json::Str(session.clone()))])),
                rx,
            },
            Err(e) => Dispatch::Reply(host_err_body(e)),
        };
    }
    Dispatch::Reply(op_body(&req.op, host, signal).expect("watch handled above"))
}

/// Body for every op that answers with a single reply. `None` for
/// [`Op::Watch`], whose lifecycle is engine-specific. [`Op::Frames`]
/// yields its ack body — the actual format switch is connection state
/// owned by the engines.
fn op_body(op: &Op, host: &Arc<Host>, signal: &StopSignal) -> Option<Body> {
    Some(match op {
        Op::Ping => Body::Ok(obj(vec![
            ("pong", Json::Int(1)),
            ("sessions", Json::Int(host.session_count() as i64)),
            ("max_sessions", Json::Int(host.max_sessions() as i64)),
            ("draining", Json::Int(i64::from(host.is_draining()))),
        ])),
        Op::Create { session, spec } => match host.create(session, spec.clone()) {
            Ok(()) => Body::Ok(obj(vec![
                ("created", Json::Str(session.clone())),
                ("spec", spec_to_json(spec)),
                ("sessions", Json::Int(host.session_count() as i64)),
            ])),
            Err(e) => host_err_body(e),
        },
        Op::Destroy { session } => match host.destroy(session) {
            Ok(()) => Body::Ok(obj(vec![
                ("destroyed", Json::Str(session.clone())),
                ("sessions", Json::Int(host.session_count() as i64)),
            ])),
            Err(e) => host_err_body(e),
        },
        Op::Cmd { session, cmd } => cmd_outcome_body(host.apply(session, cmd)),
        Op::Stream { session } => match host.stream(session) {
            Ok(text) => Body::Ok(obj(vec![("stream", Json::Str(text))])),
            Err(e) => host_err_body(e),
        },
        Op::Peek { session } => match host.peek(session) {
            Ok(p) => Body::Ok(obj(vec![
                ("version", Json::Int(p.version as i64)),
                ("nodes", Json::Int(p.nodes as i64)),
                ("backbone", Json::Int(p.backbone as i64)),
                ("height", Json::Int(p.height as i64)),
                ("commands", Json::Int(p.commands as i64)),
                ("cache_hits", Json::Int(p.cache_hits as i64)),
                ("cache_misses", Json::Int(p.cache_misses as i64)),
                ("cache_patched", Json::Int(p.cache_patched as i64)),
            ])),
            Err(e) => host_err_body(e),
        },
        Op::Frames { format } => frames_ack(*format),
        Op::Watch { .. } => return None,
        Op::Shutdown => {
            host.begin_drain();
            signal.trigger();
            Body::Ok(obj(vec![
                ("shutting_down", Json::Int(1)),
                ("sessions", Json::Int(host.session_count() as i64)),
            ]))
        }
    })
}

// ---- SIGINT -------------------------------------------------------------

static SIGINT: AtomicBool = AtomicBool::new(false);

/// Write end of the SIGINT self-pipe, published for the handler. `-1`
/// until [`install_sigint_handler`] runs.
static SIGINT_WAKE_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" fn on_sigint(_sig: i32) {
    SIGINT.store(true, Ordering::SeqCst);
    let fd = SIGINT_WAKE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        // write(2) is async-signal-safe; the flag above stays the
        // authoritative state, this byte only unblocks the poll in
        // [`Server::wait`]. Errors (full pipe, racing close) are
        // irrelevant: the pipe is never drained, one byte is enough.
        extern "C" {
            fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        }
        let byte = [1u8];
        unsafe {
            write(fd, byte.as_ptr(), 1);
        }
    }
}

/// The process-wide SIGINT self-pipe, created on first use. Lives for
/// the life of the process so the handler's fd can never dangle.
fn sigint_pipe() -> Option<&'static (Waker, WakeReader)> {
    static PIPE: OnceLock<Option<(Waker, WakeReader)>> = OnceLock::new();
    PIPE.get_or_init(|| wake_pair().ok()).as_ref()
}

/// Read end of the SIGINT self-pipe for poll-based waits.
fn sigint_pipe_fd() -> Option<i32> {
    sigint_pipe().map(|(_, reader)| reader.fd())
}

/// Install a SIGINT handler that flips a flag watched by
/// [`Server::wait`] and writes a wake byte to its poll, turning Ctrl-C
/// into the same graceful drain as the wire `shutdown` op. Safe to
/// call more than once.
pub fn install_sigint_handler() {
    if let Some((waker, _)) = sigint_pipe() {
        SIGINT_WAKE_FD.store(waker.raw_fd(), Ordering::SeqCst);
    }
    // std links libc; `signal` is the portable minimal binding (no
    // sigaction struct layout to replicate). SIG_ERR is ignored — worst
    // case Ctrl-C keeps its default behaviour.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT_NO: i32 = 2;
    unsafe {
        signal(SIGINT_NO, on_sigint as extern "C" fn(i32) as usize);
    }
}

/// Whether SIGINT has been received since the handler was installed.
pub fn sigint_received() -> bool {
    SIGINT.load(Ordering::SeqCst)
}

/// Remove a unix socket path best-effort (for CLI cleanup on bind races).
pub fn cleanup_socket(path: &Path) {
    let _ = std::fs::remove_file(path);
}
