//! The long-lived daemon: TCP and unix-socket listeners around a
//! [`Host`], with graceful shutdown.
//!
//! One thread per connection, `std::net` blocking I/O with short read
//! timeouts so every thread observes the stop flags promptly. Shutdown —
//! whether from SIGINT, the wire `shutdown` op, or
//! [`Server::begin_shutdown`] — follows one path: the host starts
//! draining (in-flight commands finish, new sessions and commands are
//! refused with a typed `shutting_down` error, reads keep being served)
//! and the accept loops stop. [`Server::wait`] then gives open
//! connections a grace period to finish their reads and disconnect
//! before hard-stopping the stragglers at their next frame boundary.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::host::{Host, HostConfig, HostError};
use crate::json::{obj, Json};
use crate::protocol::{
    decode_request, encode_response, spec_to_json, write_frame, Body, ErrKind, Op, Request,
    Response, WireError, MAX_FRAME,
};

/// Poll interval for stop-flag checks in accept and read loops.
const POLL: Duration = Duration::from_millis(25);

/// How the daemon listens and how many tenants it admits.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// TCP bind address (e.g. `127.0.0.1:7app` or `127.0.0.1:0` for an
    /// ephemeral port). `None` = no TCP listener.
    pub tcp: Option<String>,
    /// Unix-socket path. `None` = no unix listener. The file is created
    /// on start and removed by [`Server::wait`].
    pub unix: Option<PathBuf>,
    /// Session capacity (`0` = the [`HostConfig`] default).
    pub max_sessions: usize,
}

/// A running daemon. Dropping it does *not* stop the threads — call
/// [`Server::begin_shutdown`] then [`Server::wait`].
pub struct Server {
    host: Arc<Host>,
    stop: Arc<AtomicBool>,
    hard_stop: Arc<AtomicBool>,
    active_conns: Arc<AtomicUsize>,
    accept_threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Bind the requested listeners and start serving. At least one of
    /// `tcp`/`unix` must be set.
    pub fn start(opts: &ServeOptions) -> std::io::Result<Server> {
        if opts.tcp.is_none() && opts.unix.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "serve needs a --tcp address or a --unix socket path",
            ));
        }
        let max_sessions = if opts.max_sessions == 0 {
            HostConfig::default().max_sessions
        } else {
            opts.max_sessions
        };
        let host = Arc::new(Host::new(HostConfig { max_sessions }));
        let stop = Arc::new(AtomicBool::new(false));
        let hard_stop = Arc::new(AtomicBool::new(false));
        let active_conns = Arc::new(AtomicUsize::new(0));
        let mut accept_threads = Vec::new();

        let tcp_addr = match &opts.tcp {
            None => None,
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                let local = listener.local_addr()?;
                let (host, stop, hard, conns) = (
                    host.clone(),
                    stop.clone(),
                    hard_stop.clone(),
                    active_conns.clone(),
                );
                accept_threads.push(std::thread::spawn(move || {
                    accept_loop(
                        move || match listener.accept() {
                            Ok((s, _)) => {
                                s.set_nonblocking(false).ok();
                                s.set_nodelay(true).ok();
                                Some(Ok(Box::new(s) as Box<dyn Conn>))
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                            Err(e) => Some(Err(e)),
                        },
                        host,
                        stop,
                        hard,
                        conns,
                    );
                }));
                Some(local)
            }
        };

        let unix_path = match &opts.unix {
            None => None,
            Some(path) => {
                // A stale socket file from a crashed daemon blocks bind.
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                let (host, stop, hard, conns) = (
                    host.clone(),
                    stop.clone(),
                    hard_stop.clone(),
                    active_conns.clone(),
                );
                accept_threads.push(std::thread::spawn(move || {
                    accept_loop(
                        move || match listener.accept() {
                            Ok((s, _)) => {
                                s.set_nonblocking(false).ok();
                                Some(Ok(Box::new(s) as Box<dyn Conn>))
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                            Err(e) => Some(Err(e)),
                        },
                        host,
                        stop,
                        hard,
                        conns,
                    );
                }));
                Some(path.clone())
            }
        };

        Ok(Server {
            host,
            stop,
            hard_stop,
            active_conns,
            accept_threads,
            tcp_addr,
            unix_path,
        })
    }

    /// The session host (tests drive it directly).
    pub fn host(&self) -> &Arc<Host> {
        &self.host
    }

    /// The bound TCP address, once listening (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Start the graceful drain: the host refuses new sessions and
    /// commands, accept loops stop. Open connections keep serving reads
    /// until they disconnect or [`Server::wait`]'s grace period expires.
    pub fn begin_shutdown(&self) {
        self.host.begin_drain();
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by any path).
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Block until shutdown is requested, then join the accept loops and
    /// give open connections a bounded grace period to wind down.
    /// Removes the unix socket file.
    pub fn wait(self) {
        while !self.stop.load(Ordering::SeqCst) {
            if sigint_received() {
                self.begin_shutdown();
                break;
            }
            std::thread::sleep(POLL);
        }
        // begin_shutdown may have been called externally without SIGINT;
        // make sure the host drains either way.
        self.host.begin_drain();
        for t in self.accept_threads {
            let _ = t.join();
        }
        // Grace: draining clients may still fetch streams; give them a
        // bounded window to finish and hang up on their own.
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while self.active_conns.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(POLL);
        }
        // Hard stop: remaining connection threads exit at their next
        // frame boundary / poll tick. Bounded wait so a peer that went
        // silent mid-frame cannot pin us here.
        self.hard_stop.store(true, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        while self.active_conns.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(POLL);
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A bidirectional client connection (TCP or unix).
trait Conn: Read + Write + Send {
    fn set_read_timeout_conn(&self, d: Option<Duration>) -> std::io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout_conn(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(d)
    }
}

impl Conn for UnixStream {
    fn set_read_timeout_conn(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(d)
    }
}

fn accept_loop(
    mut accept: impl FnMut() -> Option<std::io::Result<Box<dyn Conn>>>,
    host: Arc<Host>,
    stop: Arc<AtomicBool>,
    hard_stop: Arc<AtomicBool>,
    conns: Arc<AtomicUsize>,
) {
    while !stop.load(Ordering::SeqCst) {
        match accept() {
            None => std::thread::sleep(POLL),
            Some(Err(_)) => std::thread::sleep(POLL),
            Some(Ok(stream)) => {
                let (host, stop, hard) = (host.clone(), stop.clone(), hard_stop.clone());
                let conns = conns.clone();
                conns.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    handle_conn(stream, &host, &stop, &hard);
                    conns.fetch_sub(1, Ordering::SeqCst);
                });
            }
        }
    }
}

/// Outcome of a stop-aware frame read.
enum FrameRead {
    Frame(String),
    Closed,
    Stopped,
}

/// Like [`crate::protocol::read_frame`] but wakes every read timeout to
/// check the hard-stop flag. At a frame boundary a hard stop closes the
/// connection; mid-frame the remaining bytes are awaited so an in-flight
/// request is never torn. The drain flag deliberately does *not* end the
/// read loop: draining clients may still fetch streams and snapshots.
fn read_frame_stoppable(r: &mut impl Read, stop: &AtomicBool) -> Result<FrameRead, WireError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        if filled == 0 && stop.load(Ordering::SeqCst) {
            return Ok(FrameRead::Stopped);
        }
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Closed),
            Ok(0) => {
                return Err(WireError::Truncated {
                    got: filled,
                    want: 4,
                })
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    got: filled,
                    want: payload.len(),
                })
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    String::from_utf8(payload)
        .map(FrameRead::Frame)
        .map_err(|_| WireError::Malformed("payload is not UTF-8".into()))
}

fn host_err_body(e: HostError) -> Body {
    Body::Err {
        kind: e.kind,
        detail: e.detail,
    }
}

fn respond(stream: &mut dyn Conn, id: u64, body: Body) -> Result<(), WireError> {
    let mut w = &mut *stream as &mut dyn Write;
    write_frame(&mut w, &encode_response(&Response { id, body }))
}

fn handle_conn(
    mut stream: Box<dyn Conn>,
    host: &Arc<Host>,
    stop: &AtomicBool,
    hard_stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout_conn(Some(POLL));
    loop {
        let frame = match read_frame_stoppable(&mut stream, hard_stop) {
            Ok(FrameRead::Frame(f)) => f,
            Ok(FrameRead::Closed | FrameRead::Stopped) => return,
            Err(WireError::Io(_)) => return,
            Err(e) => {
                // Frame-level fault: report it, then close — framing is
                // unrecoverable once the byte stream is misaligned.
                let _ = respond(
                    stream.as_mut(),
                    0,
                    Body::Err {
                        kind: ErrKind::MalformedFrame,
                        detail: e.to_string(),
                    },
                );
                return;
            }
        };
        let req = match decode_request(&frame) {
            Ok(req) => req,
            Err(detail) => {
                // Grammar-level fault: the framing is intact, so answer
                // and keep the connection.
                let _ = respond(
                    stream.as_mut(),
                    0,
                    Body::Err {
                        kind: ErrKind::MalformedFrame,
                        detail,
                    },
                );
                continue;
            }
        };
        match dispatch(&req, host, stop) {
            Dispatch::Reply(body) => {
                if respond(stream.as_mut(), req.id, body).is_err() {
                    return;
                }
            }
            Dispatch::EnterWatch { ack, rx } => {
                if respond(stream.as_mut(), req.id, ack).is_err() {
                    return;
                }
                // The connection becomes a one-way event stream: each
                // applied record arrives as an id-0 event frame carrying
                // the deterministic record line.
                loop {
                    match rx.recv_timeout(POLL) {
                        Ok(line) => {
                            let body = Body::Event(Json::Str(line));
                            if respond(stream.as_mut(), 0, body).is_err() {
                                return;
                            }
                        }
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                            if stop.load(Ordering::SeqCst) {
                                return;
                            }
                        }
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
                    }
                }
            }
        }
    }
}

enum Dispatch {
    Reply(Body),
    EnterWatch {
        ack: Body,
        rx: std::sync::mpsc::Receiver<String>,
    },
}

fn dispatch(req: &Request, host: &Arc<Host>, stop: &AtomicBool) -> Dispatch {
    let body = match &req.op {
        Op::Ping => Body::Ok(obj(vec![
            ("pong", Json::Int(1)),
            ("sessions", Json::Int(host.session_count() as i64)),
            ("max_sessions", Json::Int(host.max_sessions() as i64)),
            ("draining", Json::Int(i64::from(host.is_draining()))),
        ])),
        Op::Create { session, spec } => match host.create(session, spec.clone()) {
            Ok(()) => Body::Ok(obj(vec![
                ("created", Json::Str(session.clone())),
                ("spec", spec_to_json(spec)),
                ("sessions", Json::Int(host.session_count() as i64)),
            ])),
            Err(e) => host_err_body(e),
        },
        Op::Destroy { session } => match host.destroy(session) {
            Ok(()) => Body::Ok(obj(vec![
                ("destroyed", Json::Str(session.clone())),
                ("sessions", Json::Int(host.session_count() as i64)),
            ])),
            Err(e) => host_err_body(e),
        },
        Op::Cmd { session, cmd } => match host.apply(session, cmd) {
            Ok(record) => {
                let fields: Vec<(String, Json)> = record
                    .fields
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Int(*v)))
                    .collect();
                match &record.status {
                    dsnet::CommandStatus::Applied => Body::Ok(obj(vec![
                        ("seq", Json::Int(record.seq as i64)),
                        ("cmd", Json::Str(record.kind.to_string())),
                        ("attempts", Json::Int(i64::from(record.attempts))),
                        ("wall_us", Json::Int(record.wall_us as i64)),
                        ("fields", Json::Obj(fields)),
                    ])),
                    dsnet::CommandStatus::Rejected(reason) => Body::Err {
                        kind: ErrKind::CommandRejected,
                        detail: format!("seq {}: {reason}", record.seq),
                    },
                }
            }
            Err(e) => host_err_body(e),
        },
        Op::Stream { session } => match host.stream(session) {
            Ok(text) => Body::Ok(obj(vec![("stream", Json::Str(text))])),
            Err(e) => host_err_body(e),
        },
        Op::Peek { session } => match host.peek(session) {
            Ok(p) => Body::Ok(obj(vec![
                ("version", Json::Int(p.version as i64)),
                ("nodes", Json::Int(p.nodes as i64)),
                ("backbone", Json::Int(p.backbone as i64)),
                ("height", Json::Int(p.height as i64)),
                ("commands", Json::Int(p.commands as i64)),
                ("cache_hits", Json::Int(p.cache_hits as i64)),
                ("cache_misses", Json::Int(p.cache_misses as i64)),
            ])),
            Err(e) => host_err_body(e),
        },
        Op::Watch { session } => {
            return match host.watch(session) {
                Ok(rx) => Dispatch::EnterWatch {
                    ack: Body::Ok(obj(vec![("watching", Json::Str(session.clone()))])),
                    rx,
                },
                Err(e) => Dispatch::Reply(host_err_body(e)),
            };
        }
        Op::Shutdown => {
            host.begin_drain();
            stop.store(true, Ordering::SeqCst);
            Body::Ok(obj(vec![
                ("shutting_down", Json::Int(1)),
                ("sessions", Json::Int(host.session_count() as i64)),
            ]))
        }
    };
    Dispatch::Reply(body)
}

// ---- SIGINT -------------------------------------------------------------

static SIGINT: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_sig: i32) {
    SIGINT.store(true, Ordering::SeqCst);
}

/// Install a SIGINT handler that flips a flag watched by
/// [`Server::wait`], turning Ctrl-C into the same graceful drain as the
/// wire `shutdown` op. Safe to call more than once.
pub fn install_sigint_handler() {
    // std links libc; `signal` is the portable minimal binding (no
    // sigaction struct layout to replicate). SIG_ERR is ignored — worst
    // case Ctrl-C keeps its default behaviour.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT_NO: i32 = 2;
    unsafe {
        signal(SIGINT_NO, on_sigint as extern "C" fn(i32) as usize);
    }
}

/// Whether SIGINT has been received since the handler was installed.
pub fn sigint_received() -> bool {
    SIGINT.load(Ordering::SeqCst)
}

/// Remove a unix socket path best-effort (for CLI cleanup on bind races).
pub fn cleanup_socket(path: &Path) {
    let _ = std::fs::remove_file(path);
}
