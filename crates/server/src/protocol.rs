//! The dsnet wire protocol: length-prefixed JSON frames plus the
//! request/response vocabulary of the session service.
//!
//! ## Framing
//!
//! Every message is one frame: a 4-byte big-endian `u32` payload length
//! followed by that many bytes of UTF-8 JSON. Frames longer than
//! [`MAX_FRAME`] are rejected before any allocation; a short read is a
//! [`WireError::Truncated`] (the error taxonomy distinguishes transport
//! faults from protocol faults so clients can react precisely).
//!
//! ## Grammar
//!
//! Requests are objects `{"id": <u64>, "op": "<name>", ...}`; responses
//! echo the id: `{"id": <u64>, "ok": <value>}` or
//! `{"id": <u64>, "err": "<kind>", "detail": "<text>"}`. Watch events
//! arrive as `{"id": 0, "event": <value>}` interleaved on a subscribed
//! connection. All numbers are integers (see [`crate::json`]).
//!
//! ## Payload formats
//!
//! The framing (length prefix, 1 MiB cap) is format-independent; the
//! *payload* encoding is negotiable per connection. Every connection
//! starts in [`FrameFormat::Json`]; a `{"op": "frames", "format":
//! "binary"}` request switches it to the tagged binary encoding of the
//! same value model ([`dsnet_codec::binary`]) — the ack is sent in the
//! old format, every subsequent frame in the new one. The grammar is
//! identical in both formats; only the byte-level value encoding
//! differs, so the [`request_to_json`]/[`request_from_json`] pair (and
//! the response twins) are the single source of truth for both.

use std::io::{Read, Write};

use dsnet::{Protocol, SessionCommand, SessionSpec};

use crate::json::{obj, parse, Json};

/// Hard ceiling on frame payload size (1 MiB).
pub const MAX_FRAME: u32 = 1 << 20;

/// Everything that can go wrong on the wire, split so callers can tell
/// transport faults from protocol faults.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The stream ended mid-frame: `got` of `want` bytes arrived.
    Truncated {
        /// Bytes actually read.
        got: usize,
        /// Bytes the frame header promised.
        want: usize,
    },
    /// The frame header announced a payload longer than [`MAX_FRAME`].
    Oversized {
        /// Announced payload length.
        len: u32,
        /// The enforced maximum.
        max: u32,
    },
    /// The payload was not valid protocol JSON (bad UTF-8, bad JSON, or
    /// a well-formed document that doesn't match the grammar).
    Malformed(String),
    /// An OS-level I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated { got, want } => {
                write!(f, "truncated frame: got {got} of {want} bytes")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds max {max}")
            }
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Write one raw frame (length prefix + payload bytes). Header and
/// payload go out in a single write: split writes on a TCP socket
/// interact with Nagle + delayed ACK and cost ~40 ms per response.
pub fn write_frame_bytes(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME as usize {
        return Err(WireError::Oversized {
            len: payload.len() as u32,
            max: MAX_FRAME,
        });
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Write one JSON-format frame (see [`write_frame_bytes`]).
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), WireError> {
    write_frame_bytes(w, payload.as_bytes())
}

/// Read one raw frame payload. Returns [`WireError::Closed`] on a clean
/// EOF at a frame boundary, [`WireError::Truncated`] mid-frame.
pub fn read_frame_bytes(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Truncated {
                    got: filled,
                    want: 4,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    got: filled,
                    want: payload.len(),
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(payload)
}

/// Read one JSON-format frame payload (see [`read_frame_bytes`]); a
/// non-UTF-8 payload is a [`WireError::Malformed`] transport fault.
pub fn read_frame(r: &mut impl Read) -> Result<String, WireError> {
    String::from_utf8(read_frame_bytes(r)?)
        .map_err(|_| WireError::Malformed("payload is not UTF-8".into()))
}

/// The negotiable payload encoding of a connection's frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameFormat {
    /// UTF-8 JSON text (the initial format of every connection).
    #[default]
    Json,
    /// The tagged binary encoding of the same value model
    /// ([`crate::json::binary`]): no escape handling or digit parsing
    /// on the hot decode path.
    Binary,
}

impl FrameFormat {
    /// Stable wire label (the `format` field of the `frames` op).
    pub fn label(self) -> &'static str {
        match self {
            FrameFormat::Json => "json",
            FrameFormat::Binary => "binary",
        }
    }

    /// Parse a wire label.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "json" => FrameFormat::Json,
            "binary" => FrameFormat::Binary,
            _ => return None,
        })
    }
}

/// A payload-level decode failure, split by severity so connection
/// handlers can preserve the error taxonomy the thread server pinned
/// down: an [`Encoding`](PayloadFault::Encoding) fault means the bytes
/// aren't a document in the negotiated format at all (the peer's framing
/// state is suspect — answer id 0 and close), while a
/// [`Grammar`](PayloadFault::Grammar) fault means a well-formed document
/// didn't match the protocol grammar (answer id 0, keep the connection
/// usable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadFault {
    /// Undecodable payload: non-UTF-8 JSON frame, or a binary frame the
    /// tagged decoder rejects.
    Encoding(String),
    /// A decodable document with the wrong shape (unknown op, missing
    /// field, reserved id…). Includes JSON *parse* errors, which the
    /// thread server always treated as recoverable.
    Grammar(String),
}

impl PayloadFault {
    /// The deterministic detail string carried in the error reply.
    pub fn detail(&self) -> &str {
        match self {
            PayloadFault::Encoding(s) | PayloadFault::Grammar(s) => s,
        }
    }
}

/// Protocol-level failure kinds carried in error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// The request frame didn't match the grammar.
    MalformedFrame,
    /// The named session doesn't exist.
    UnknownSession,
    /// A session with that name already exists.
    DuplicateSession,
    /// The session executor rejected the command (see detail).
    CommandRejected,
    /// The host is at `--max-sessions`; retry after a destroy.
    Busy,
    /// The host is draining for shutdown and refuses new work.
    ShuttingDown,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrKind::MalformedFrame => "malformed_frame",
            ErrKind::UnknownSession => "unknown_session",
            ErrKind::DuplicateSession => "duplicate_session",
            ErrKind::CommandRejected => "command_rejected",
            ErrKind::Busy => "busy",
            ErrKind::ShuttingDown => "shutting_down",
            ErrKind::Internal => "internal",
        }
    }

    /// Parse a wire label.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "malformed_frame" => ErrKind::MalformedFrame,
            "unknown_session" => ErrKind::UnknownSession,
            "duplicate_session" => ErrKind::DuplicateSession,
            "command_rejected" => ErrKind::CommandRejected,
            "busy" => ErrKind::Busy,
            "shutting_down" => ErrKind::ShuttingDown,
            "internal" => ErrKind::Internal,
            _ => return None,
        })
    }
}

/// One operation a client can request.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Liveness probe; answers `{"pong": 1}` plus host occupancy.
    Ping,
    /// Create a session named `session` from `spec`.
    Create {
        /// Tenant session name.
        session: String,
        /// Network build parameters.
        spec: SessionSpec,
    },
    /// Destroy a session and drop its state.
    Destroy {
        /// Tenant session name.
        session: String,
    },
    /// Apply one command to a session; answers with its record.
    Cmd {
        /// Tenant session name.
        session: String,
        /// The command to apply.
        cmd: SessionCommand,
    },
    /// Fetch a session's full deterministic event stream.
    Stream {
        /// Tenant session name.
        session: String,
    },
    /// Subscribe this connection to a session's trace: every record
    /// applied after this point is pushed as an event frame.
    Watch {
        /// Tenant session name.
        session: String,
    },
    /// Read a session's current knowledge snapshot without recording
    /// a command.
    Peek {
        /// Tenant session name.
        session: String,
    },
    /// Switch this connection's payload encoding. The ack is sent in
    /// the *old* format; every frame after it uses the new one.
    Frames {
        /// Requested payload encoding.
        format: FrameFormat,
    },
    /// Ask the host to drain and exit.
    Shutdown,
}

/// A client request: correlation id plus operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Correlation id echoed in the response (client-chosen, nonzero;
    /// id 0 is reserved for server-pushed events).
    pub id: u64,
    /// The requested operation.
    pub op: Op,
}

/// The body of a server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// Success with a result value.
    Ok(Json),
    /// A typed failure.
    Err {
        /// Failure classification.
        kind: ErrKind,
        /// Deterministic human-readable detail.
        detail: String,
    },
    /// A server-pushed watch event (id 0).
    Event(Json),
}

/// A server frame: correlation id plus body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id (0 for pushed events).
    pub id: u64,
    /// Outcome.
    pub body: Body,
}

/// Stable wire label of a broadcast protocol (matches the CLI flags).
pub fn protocol_label(p: Protocol) -> &'static str {
    match p {
        Protocol::ImprovedCff => "cff",
        Protocol::BasicCff => "cff1",
        Protocol::ReliableCff => "rcff",
        Protocol::Dfo => "dfo",
    }
}

/// Parse a wire protocol label.
pub fn protocol_from_label(s: &str) -> Option<Protocol> {
    Some(match s {
        "cff" => Protocol::ImprovedCff,
        "cff1" => Protocol::BasicCff,
        "rcff" | "reliable" => Protocol::ReliableCff,
        "dfo" => Protocol::Dfo,
        _ => return None,
    })
}

/// Encode a session spec as a JSON object.
pub fn spec_to_json(spec: &SessionSpec) -> Json {
    obj(vec![
        ("nodes", Json::Int(spec.nodes as i64)),
        ("seed", Json::Int(spec.seed as i64)),
        ("field_milli", Json::Int(spec.field_milli as i64)),
        ("groups", Json::Int(spec.groups as i64)),
        ("membership_ppm", Json::Int(spec.membership_ppm as i64)),
    ])
}

fn field_u64(v: &Json, key: &str, default: Option<u64>) -> Result<u64, String> {
    match v.get(key) {
        None => default.ok_or_else(|| format!("missing field '{key}'")),
        Some(j) => {
            let n = j
                .as_i64()
                .ok_or_else(|| format!("field '{key}' must be an integer"))?;
            u64::try_from(n).map_err(|_| format!("field '{key}' must be non-negative"))
        }
    }
}

/// Decode a session spec; missing fields fall back to the defaults.
/// The seed is a full-range `u64` carried in two's-complement (an `i64`
/// on the wire, matching [`spec_to_json`]'s `as i64` cast), so derived
/// seeds above `i64::MAX` round-trip exactly.
pub fn spec_from_json(v: &Json) -> Result<SessionSpec, String> {
    let d = SessionSpec::default();
    let seed = match v.get("seed") {
        None => d.seed,
        Some(j) => j.as_i64().ok_or("field 'seed' must be an integer")? as u64,
    };
    Ok(SessionSpec {
        nodes: field_u64(v, "nodes", Some(d.nodes as u64))? as usize,
        seed,
        field_milli: field_u64(v, "field_milli", Some(d.field_milli as u64))? as u32,
        groups: field_u64(v, "groups", Some(d.groups as u64))? as u16,
        membership_ppm: field_u64(v, "membership_ppm", Some(d.membership_ppm as u64))? as u32,
    })
}

/// Encode a session command as a flat JSON object (the same shape script
/// files use, one object per line).
pub fn command_to_json(cmd: &SessionCommand) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![("cmd", Json::Str(cmd.kind().to_string()))];
    match cmd {
        SessionCommand::Broadcast {
            protocol,
            source,
            channels,
            loss_ppm,
            retries,
            min_delivery_ppm,
        } => {
            pairs.push(("protocol", Json::Str(protocol_label(*protocol).to_string())));
            if let Some(s) = source {
                pairs.push(("source", Json::Int(*s as i64)));
            }
            pairs.push(("channels", Json::Int(*channels as i64)));
            pairs.push(("loss_ppm", Json::Int(*loss_ppm as i64)));
            pairs.push(("retries", Json::Int(*retries as i64)));
            pairs.push(("min_delivery_ppm", Json::Int(*min_delivery_ppm as i64)));
        }
        SessionCommand::Multicast { group, source } => {
            pairs.push(("group", Json::Int(*group as i64)));
            if let Some(s) = source {
                pairs.push(("source", Json::Int(*s as i64)));
            }
        }
        SessionCommand::MoveIn {
            x_milli,
            y_milli,
            groups,
        } => {
            pairs.push(("x_milli", Json::Int(*x_milli)));
            pairs.push(("y_milli", Json::Int(*y_milli)));
            pairs.push((
                "groups",
                Json::Arr(groups.iter().map(|g| Json::Int(*g as i64)).collect()),
            ));
        }
        SessionCommand::MoveOut { node }
        | SessionCommand::Kill { node }
        | SessionCommand::Revive { node }
        | SessionCommand::Repair { node } => {
            pairs.push(("node", Json::Int(*node as i64)));
        }
        SessionCommand::Mobility {
            epochs,
            movers,
            step_milli,
        } => {
            pairs.push(("epochs", Json::Int(*epochs as i64)));
            pairs.push(("movers", Json::Int(*movers as i64)));
            pairs.push(("step_milli", Json::Int(*step_milli as i64)));
        }
        SessionCommand::Snapshot => {}
    }
    obj(pairs)
}

/// Decode a session command from its flat object form.
pub fn command_from_json(v: &Json) -> Result<SessionCommand, String> {
    let kind = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("missing string field 'cmd'")?;
    let node = |key: &str| -> Result<u32, String> { field_u64(v, key, None).map(|n| n as u32) };
    Ok(match kind {
        "broadcast" => {
            let label = v.get("protocol").and_then(Json::as_str).unwrap_or("cff");
            let protocol =
                protocol_from_label(label).ok_or_else(|| format!("unknown protocol '{label}'"))?;
            let source = match v.get("source") {
                None | Some(Json::Null) => None,
                Some(j) => Some(
                    j.as_i64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or("field 'source' must be a node id")?,
                ),
            };
            SessionCommand::Broadcast {
                protocol,
                source,
                channels: field_u64(v, "channels", Some(1))? as u8,
                loss_ppm: field_u64(v, "loss_ppm", Some(0))? as u32,
                retries: field_u64(v, "retries", Some(0))? as u32,
                min_delivery_ppm: field_u64(v, "min_delivery_ppm", Some(0))? as u32,
            }
        }
        "multicast" => {
            let source = match v.get("source") {
                None | Some(Json::Null) => None,
                Some(j) => Some(
                    j.as_i64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or("field 'source' must be a node id")?,
                ),
            };
            SessionCommand::Multicast {
                group: field_u64(v, "group", Some(0))? as u16,
                source,
            }
        }
        "move_in" => {
            let coord = |key: &str| -> Result<i64, String> {
                v.get(key)
                    .ok_or_else(|| format!("missing field '{key}'"))?
                    .as_i64()
                    .ok_or_else(|| format!("field '{key}' must be an integer"))
            };
            let groups = match v.get("groups") {
                None => Vec::new(),
                Some(j) => j
                    .as_arr()
                    .ok_or("field 'groups' must be an array")?
                    .iter()
                    .map(|g| {
                        g.as_i64()
                            .and_then(|n| u16::try_from(n).ok())
                            .ok_or("group ids must be u16 integers".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            SessionCommand::MoveIn {
                x_milli: coord("x_milli")?,
                y_milli: coord("y_milli")?,
                groups,
            }
        }
        "move_out" => SessionCommand::MoveOut {
            node: node("node")?,
        },
        "kill" => SessionCommand::Kill {
            node: node("node")?,
        },
        "revive" => SessionCommand::Revive {
            node: node("node")?,
        },
        "repair" => SessionCommand::Repair {
            node: node("node")?,
        },
        "mobility" => SessionCommand::Mobility {
            epochs: field_u64(v, "epochs", Some(1))? as u32,
            movers: field_u64(v, "movers", Some(1))? as u32,
            step_milli: field_u64(v, "step_milli", Some(500))? as u32,
        },
        "snapshot" => SessionCommand::Snapshot,
        other => return Err(format!("unknown command '{other}'")),
    })
}

/// Encode a request as the JSON value model shared by both frame
/// formats (the single source of truth for the request grammar).
pub fn request_to_json(req: &Request) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![("id", Json::Int(req.id as i64))];
    match &req.op {
        Op::Ping => pairs.push(("op", Json::Str("ping".into()))),
        Op::Create { session, spec } => {
            pairs.push(("op", Json::Str("create".into())));
            pairs.push(("session", Json::Str(session.clone())));
            pairs.push(("spec", spec_to_json(spec)));
        }
        Op::Destroy { session } => {
            pairs.push(("op", Json::Str("destroy".into())));
            pairs.push(("session", Json::Str(session.clone())));
        }
        Op::Cmd { session, cmd } => {
            pairs.push(("op", Json::Str("cmd".into())));
            pairs.push(("session", Json::Str(session.clone())));
            pairs.push(("command", command_to_json(cmd)));
        }
        Op::Stream { session } => {
            pairs.push(("op", Json::Str("stream".into())));
            pairs.push(("session", Json::Str(session.clone())));
        }
        Op::Watch { session } => {
            pairs.push(("op", Json::Str("watch".into())));
            pairs.push(("session", Json::Str(session.clone())));
        }
        Op::Peek { session } => {
            pairs.push(("op", Json::Str("peek".into())));
            pairs.push(("session", Json::Str(session.clone())));
        }
        Op::Frames { format } => {
            pairs.push(("op", Json::Str("frames".into())));
            pairs.push(("format", Json::Str(format.label().into())));
        }
        Op::Shutdown => pairs.push(("op", Json::Str("shutdown".into()))),
    }
    obj(pairs)
}

/// Encode a request as a JSON frame payload.
pub fn encode_request(req: &Request) -> String {
    request_to_json(req).render()
}

/// Decode a request from the shared JSON value model.
pub fn request_from_json(v: &Json) -> Result<Request, String> {
    let id = field_u64(v, "id", None)?;
    if id == 0 {
        return Err("request id 0 is reserved for events".into());
    }
    let op_name = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field 'op'")?;
    let session = || -> Result<String, String> {
        v.get("session")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "missing string field 'session'".into())
    };
    let op = match op_name {
        "ping" => Op::Ping,
        "create" => Op::Create {
            session: session()?,
            spec: match v.get("spec") {
                None => SessionSpec::default(),
                Some(s) => spec_from_json(s)?,
            },
        },
        "destroy" => Op::Destroy {
            session: session()?,
        },
        "cmd" => Op::Cmd {
            session: session()?,
            cmd: command_from_json(v.get("command").ok_or("missing field 'command'")?)?,
        },
        "stream" => Op::Stream {
            session: session()?,
        },
        "watch" => Op::Watch {
            session: session()?,
        },
        "peek" => Op::Peek {
            session: session()?,
        },
        "frames" => {
            let label = v
                .get("format")
                .and_then(Json::as_str)
                .ok_or("missing string field 'format'")?;
            Op::Frames {
                format: FrameFormat::from_label(label)
                    .ok_or_else(|| format!("unknown frame format '{label}'"))?,
            }
        }
        "shutdown" => Op::Shutdown,
        other => return Err(format!("unknown op '{other}'")),
    };
    Ok(Request { id, op })
}

/// Decode a request from a JSON frame payload.
pub fn decode_request(payload: &str) -> Result<Request, String> {
    let v = parse(payload).map_err(|e| e.to_string())?;
    request_from_json(&v)
}

/// Encode a response as the JSON value model shared by both frame
/// formats.
pub fn response_to_json(resp: &Response) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![("id", Json::Int(resp.id as i64))];
    match &resp.body {
        Body::Ok(v) => pairs.push(("ok", v.clone())),
        Body::Err { kind, detail } => {
            pairs.push(("err", Json::Str(kind.label().into())));
            pairs.push(("detail", Json::Str(detail.clone())));
        }
        Body::Event(v) => pairs.push(("event", v.clone())),
    }
    obj(pairs)
}

/// Encode a response as a JSON frame payload.
pub fn encode_response(resp: &Response) -> String {
    response_to_json(resp).render()
}

/// Decode a response from the shared JSON value model.
pub fn response_from_json(v: &Json) -> Result<Response, String> {
    let id = field_u64(v, "id", None)?;
    let body = if let Some(ok) = v.get("ok") {
        Body::Ok(ok.clone())
    } else if let Some(kind) = v.get("err") {
        let label = kind.as_str().ok_or("field 'err' must be a string")?;
        Body::Err {
            kind: ErrKind::from_label(label)
                .ok_or_else(|| format!("unknown err kind '{label}'"))?,
            detail: v
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        }
    } else if let Some(ev) = v.get("event") {
        Body::Event(ev.clone())
    } else {
        return Err("response needs one of 'ok', 'err', 'event'".into());
    };
    Ok(Response { id, body })
}

/// Decode a response from a JSON frame payload.
pub fn decode_response(payload: &str) -> Result<Response, String> {
    let v = parse(payload).map_err(|e| e.to_string())?;
    response_from_json(&v)
}

/// Encode a request frame payload in the given format.
pub fn encode_request_bytes(req: &Request, format: FrameFormat) -> Vec<u8> {
    match format {
        FrameFormat::Json => encode_request(req).into_bytes(),
        FrameFormat::Binary => crate::json::binary::to_bytes(&request_to_json(req)),
    }
}

/// Encode a response frame payload in the given format.
pub fn encode_response_bytes(resp: &Response, format: FrameFormat) -> Vec<u8> {
    match format {
        FrameFormat::Json => encode_response(resp).into_bytes(),
        FrameFormat::Binary => crate::json::binary::to_bytes(&response_to_json(resp)),
    }
}

fn payload_to_json(payload: &[u8], format: FrameFormat) -> Result<Json, PayloadFault> {
    match format {
        FrameFormat::Json => {
            let text = std::str::from_utf8(payload)
                .map_err(|_| PayloadFault::Encoding("payload is not UTF-8".into()))?;
            parse(text).map_err(|e| PayloadFault::Grammar(e.to_string()))
        }
        FrameFormat::Binary => crate::json::binary::from_bytes(payload)
            .map_err(|e| PayloadFault::Encoding(e.to_string())),
    }
}

/// Decode a request frame payload in the given format, classifying
/// failures per the [`PayloadFault`] taxonomy.
pub fn decode_request_bytes(payload: &[u8], format: FrameFormat) -> Result<Request, PayloadFault> {
    let v = payload_to_json(payload, format)?;
    request_from_json(&v).map_err(PayloadFault::Grammar)
}

/// Decode a response frame payload in the given format.
pub fn decode_response_bytes(
    payload: &[u8],
    format: FrameFormat,
) -> Result<Response, PayloadFault> {
    let v = payload_to_json(payload, format)?;
    response_from_json(&v).map_err(PayloadFault::Grammar)
}

/// Parse a script: one flat command object per line; blank lines and
/// `#` comments are skipped. Returns commands with 1-based line numbers
/// attached to errors.
pub fn parse_script(text: &str) -> Result<Vec<SessionCommand>, String> {
    let mut cmds = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        cmds.push(command_from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(cmds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"id\":1}").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "second ε frame").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), "{\"id\":1}");
        assert_eq!(read_frame(&mut r).unwrap(), "");
        assert_eq!(read_frame(&mut r).unwrap(), "second ε frame");
        assert!(matches!(read_frame(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        // Header promises 10 bytes, only 3 arrive.
        let mut bytes = 10u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let got = read_frame(&mut Cursor::new(bytes));
        assert!(matches!(
            got,
            Err(WireError::Truncated { got: 3, want: 10 })
        ));
        // Header itself cut short.
        let got = read_frame(&mut Cursor::new(vec![0u8, 0]));
        assert!(matches!(got, Err(WireError::Truncated { got: 2, want: 4 })));
    }

    #[test]
    fn oversized_frames_are_rejected_both_directions() {
        let bytes = (MAX_FRAME + 1).to_be_bytes().to_vec();
        let got = read_frame(&mut Cursor::new(bytes));
        assert!(matches!(got, Err(WireError::Oversized { .. })));
        let big = "x".repeat(MAX_FRAME as usize + 1);
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &big),
            Err(WireError::Oversized { .. })
        ));
        assert!(sink.is_empty(), "nothing written for an oversized frame");
    }

    #[test]
    fn non_utf8_payload_is_malformed() {
        let mut bytes = 2u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes)),
            Err(WireError::Malformed(_))
        ));
    }

    fn roundtrip_req(req: Request) {
        let text = encode_request(&req);
        assert_eq!(decode_request(&text).expect(&text), req, "{text}");
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request {
            id: 1,
            op: Op::Ping,
        });
        roundtrip_req(Request {
            id: 2,
            op: Op::Shutdown,
        });
        roundtrip_req(Request {
            id: 3,
            op: Op::Create {
                session: "t-0".into(),
                spec: SessionSpec {
                    nodes: 24,
                    seed: 99,
                    field_milli: 6_000,
                    groups: 3,
                    membership_ppm: 250_000,
                },
            },
        });
        for session in ["a", "with \"quotes\""] {
            roundtrip_req(Request {
                id: 4,
                op: Op::Destroy {
                    session: session.into(),
                },
            });
            roundtrip_req(Request {
                id: 5,
                op: Op::Stream {
                    session: session.into(),
                },
            });
            roundtrip_req(Request {
                id: 6,
                op: Op::Watch {
                    session: session.into(),
                },
            });
            roundtrip_req(Request {
                id: 7,
                op: Op::Peek {
                    session: session.into(),
                },
            });
        }
    }

    #[test]
    fn every_command_roundtrips_through_cmd_op() {
        let cmds = vec![
            SessionCommand::Broadcast {
                protocol: Protocol::ImprovedCff,
                source: None,
                channels: 2,
                loss_ppm: 50_000,
                retries: 3,
                min_delivery_ppm: 990_000,
            },
            SessionCommand::Broadcast {
                protocol: Protocol::Dfo,
                source: Some(7),
                channels: 1,
                loss_ppm: 0,
                retries: 0,
                min_delivery_ppm: 0,
            },
            SessionCommand::Multicast {
                group: 2,
                source: Some(3),
            },
            SessionCommand::Multicast {
                group: 0,
                source: None,
            },
            SessionCommand::MoveIn {
                x_milli: -250,
                y_milli: 9_750,
                groups: vec![0, 2],
            },
            SessionCommand::MoveOut { node: 11 },
            SessionCommand::Kill { node: 4 },
            SessionCommand::Revive { node: 4 },
            SessionCommand::Repair { node: 9 },
            SessionCommand::Mobility {
                epochs: 3,
                movers: 2,
                step_milli: 400,
            },
            SessionCommand::Snapshot,
        ];
        for cmd in cmds {
            roundtrip_req(Request {
                id: 8,
                op: Op::Cmd {
                    session: "s".into(),
                    cmd,
                },
            });
        }
    }

    #[test]
    fn all_protocol_labels_roundtrip() {
        for p in [
            Protocol::Dfo,
            Protocol::BasicCff,
            Protocol::ImprovedCff,
            Protocol::ReliableCff,
        ] {
            assert_eq!(protocol_from_label(protocol_label(p)), Some(p));
        }
        assert_eq!(protocol_from_label("nope"), None);
    }

    #[test]
    fn responses_roundtrip() {
        let cases = vec![
            Response {
                id: 1,
                body: Body::Ok(Json::Int(1)),
            },
            Response {
                id: 2,
                body: Body::Ok(obj(vec![("stream", Json::Str("text\nlines".into()))])),
            },
            Response {
                id: 3,
                body: Body::Err {
                    kind: ErrKind::UnknownSession,
                    detail: "no session 'x'".into(),
                },
            },
            Response {
                id: 0,
                body: Body::Event(obj(vec![("seq", Json::Int(4))])),
            },
        ];
        for resp in cases {
            let text = encode_response(&resp);
            assert_eq!(decode_response(&text).unwrap(), resp, "{text}");
        }
    }

    #[test]
    fn every_err_kind_label_roundtrips() {
        for kind in [
            ErrKind::MalformedFrame,
            ErrKind::UnknownSession,
            ErrKind::DuplicateSession,
            ErrKind::CommandRejected,
            ErrKind::Busy,
            ErrKind::ShuttingDown,
            ErrKind::Internal,
        ] {
            assert_eq!(ErrKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(ErrKind::from_label("bogus"), None);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"id\":0,\"op\":\"ping\"}",
            "{\"id\":-3,\"op\":\"ping\"}",
            "{\"id\":1}",
            "{\"id\":1,\"op\":\"warp\"}",
            "{\"id\":1,\"op\":\"cmd\",\"session\":\"s\"}",
            "{\"id\":1,\"op\":\"cmd\",\"session\":\"s\",\"command\":{\"cmd\":\"zap\"}}",
            "{\"id\":1,\"op\":\"create\",\"session\":\"s\",\"spec\":{\"nodes\":-5}}",
            "{\"id\":1,\"op\":\"destroy\"}",
        ] {
            assert!(decode_request(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn frame_format_labels_roundtrip() {
        for format in [FrameFormat::Json, FrameFormat::Binary] {
            assert_eq!(FrameFormat::from_label(format.label()), Some(format));
        }
        assert_eq!(FrameFormat::from_label("msgpack"), None);
        assert_eq!(FrameFormat::default(), FrameFormat::Json);
    }

    #[test]
    fn frames_op_roundtrips_in_both_formats() {
        for format in [FrameFormat::Json, FrameFormat::Binary] {
            let req = Request {
                id: 11,
                op: Op::Frames { format },
            };
            roundtrip_req(req.clone());
            for wire in [FrameFormat::Json, FrameFormat::Binary] {
                let bytes = encode_request_bytes(&req, wire);
                assert_eq!(decode_request_bytes(&bytes, wire).unwrap(), req);
            }
        }
        assert!(decode_request("{\"id\":1,\"op\":\"frames\"}").is_err());
        assert!(decode_request("{\"id\":1,\"op\":\"frames\",\"format\":\"xml\"}").is_err());
    }

    #[test]
    fn bytes_codecs_agree_across_formats() {
        let reqs = vec![
            Request {
                id: 1,
                op: Op::Ping,
            },
            Request {
                id: 2,
                op: Op::Create {
                    session: "s \"q\" ε".into(),
                    spec: SessionSpec {
                        seed: u64::MAX,
                        ..SessionSpec::default()
                    },
                },
            },
            Request {
                id: 3,
                op: Op::Cmd {
                    session: "s".into(),
                    cmd: SessionCommand::MoveIn {
                        x_milli: -1,
                        y_milli: 2,
                        groups: vec![0, 7],
                    },
                },
            },
        ];
        for req in reqs {
            let json = decode_request_bytes(
                &encode_request_bytes(&req, FrameFormat::Json),
                FrameFormat::Json,
            );
            let bin = decode_request_bytes(
                &encode_request_bytes(&req, FrameFormat::Binary),
                FrameFormat::Binary,
            );
            assert_eq!(json.as_ref().unwrap(), &req);
            assert_eq!(json.unwrap(), bin.unwrap());
        }
        let resp = Response {
            id: 9,
            body: Body::Err {
                kind: ErrKind::Busy,
                detail: "at capacity".into(),
            },
        };
        for wire in [FrameFormat::Json, FrameFormat::Binary] {
            let bytes = encode_response_bytes(&resp, wire);
            assert_eq!(decode_response_bytes(&bytes, wire).unwrap(), resp);
        }
    }

    #[test]
    fn payload_faults_classify_by_severity() {
        // JSON: bad UTF-8 is an encoding fault (close), bad JSON text
        // and wrong-shape documents are grammar faults (keep).
        assert!(matches!(
            decode_request_bytes(&[0xff, 0xfe], FrameFormat::Json),
            Err(PayloadFault::Encoding(_))
        ));
        assert!(matches!(
            decode_request_bytes(b"{oops", FrameFormat::Json),
            Err(PayloadFault::Grammar(_))
        ));
        assert!(matches!(
            decode_request_bytes(b"{\"id\":1,\"op\":\"warp\"}", FrameFormat::Json),
            Err(PayloadFault::Grammar(_))
        ));
        // Binary: an undecodable document is an encoding fault; a
        // well-formed document with the wrong shape is grammar.
        assert!(matches!(
            decode_request_bytes(&[99], FrameFormat::Binary),
            Err(PayloadFault::Encoding(_))
        ));
        let wrong_shape = crate::json::binary::to_bytes(&obj(vec![("id", Json::Int(1))]));
        assert!(matches!(
            decode_request_bytes(&wrong_shape, FrameFormat::Binary),
            Err(PayloadFault::Grammar(_))
        ));
    }

    #[test]
    fn raw_frames_roundtrip_bytes() {
        let mut buf = Vec::new();
        write_frame_bytes(&mut buf, &[0, 1, 2, 0xff]).unwrap();
        write_frame_bytes(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame_bytes(&mut r).unwrap(), vec![0, 1, 2, 0xff]);
        assert_eq!(read_frame_bytes(&mut r).unwrap(), Vec::<u8>::new());
        assert!(matches!(read_frame_bytes(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn full_range_seeds_roundtrip() {
        // Derived seeds routinely exceed i64::MAX; the wire carries them
        // in two's-complement.
        for seed in [0, 1, i64::MAX as u64, i64::MAX as u64 + 1, u64::MAX] {
            roundtrip_req(Request {
                id: 9,
                op: Op::Create {
                    session: "s".into(),
                    spec: SessionSpec {
                        seed,
                        ..SessionSpec::default()
                    },
                },
            });
        }
    }

    #[test]
    fn spec_defaults_fill_missing_fields() {
        let spec = spec_from_json(&parse("{\"nodes\":30}").unwrap()).unwrap();
        assert_eq!(spec.nodes, 30);
        assert_eq!(spec.seed, SessionSpec::default().seed);
        assert_eq!(spec.field_milli, SessionSpec::default().field_milli);
    }

    #[test]
    fn scripts_parse_with_comments_and_blanks() {
        let text = "# a demo script\n\n{\"cmd\":\"broadcast\",\"protocol\":\"dfo\"}\n  \n{\"cmd\":\"kill\",\"node\":3}\n{\"cmd\":\"snapshot\"}\n";
        let cmds = parse_script(text).unwrap();
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[0].kind(), "broadcast");
        assert_eq!(cmds[1], SessionCommand::Kill { node: 3 });
        assert_eq!(cmds[2], SessionCommand::Snapshot);
        let err = parse_script("{\"cmd\":\"snapshot\"}\n{oops}\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
