//! A blocking client for the dsnet wire protocol, plus the scripted
//! session runner the CLI and the load-test scenario share.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Instant;

use dsnet::{SessionCommand, SessionSpec};

use crate::json::Json;
use crate::protocol::{
    decode_response_bytes, encode_request_bytes, read_frame_bytes, write_frame_bytes, Body,
    ErrKind, FrameFormat, Op, PayloadFault, Request, WireError,
};

/// A client-side failure: transport fault or a typed server error.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing failed.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// Failure classification from the wire.
        kind: ErrKind,
        /// Server-provided detail text.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server { kind, detail } => write!(f, "{}: {detail}", kind.label()),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

trait ClientStream: Read + Write + Send {}
impl ClientStream for TcpStream {}
impl ClientStream for UnixStream {}

/// A connected protocol client. One in-flight request at a time;
/// responses are matched by correlation id.
pub struct Client {
    stream: Box<dyn ClientStream>,
    next_id: u64,
    format: FrameFormat,
}

impl Client {
    /// Connect over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream: Box::new(stream),
            next_id: 1,
            format: FrameFormat::Json,
        })
    }

    /// Connect over a unix socket.
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        Ok(Client {
            stream: Box::new(UnixStream::connect(path)?),
            next_id: 1,
            format: FrameFormat::Json,
        })
    }

    /// The payload format currently in effect on this connection.
    pub fn format(&self) -> FrameFormat {
        self.format
    }

    /// Negotiate the connection's payload format. The server acks in
    /// the old format and switches after, so the switch here happens
    /// once the ack has been read. A no-op when already negotiated.
    pub fn negotiate(&mut self, format: FrameFormat) -> Result<(), ClientError> {
        if format == self.format {
            return Ok(());
        }
        self.request_ok(Op::Frames { format })?;
        self.format = format;
        Ok(())
    }

    /// Issue one request and wait for its response body. Pushed event
    /// frames (id 0) arriving out of band are skipped — they belong to
    /// watch mode.
    pub fn request(&mut self, op: Op) -> Result<Body, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame_bytes(
            &mut self.stream,
            &encode_request_bytes(&Request { id, op }, self.format),
        )?;
        loop {
            let payload = read_frame_bytes(&mut self.stream)?;
            let resp = decode_response_bytes(&payload, self.format)
                .map_err(|f: PayloadFault| WireError::Malformed(f.detail().to_string()))?;
            if resp.id == id {
                return match resp.body {
                    Body::Err { kind, detail } => Err(ClientError::Server { kind, detail }),
                    body => Ok(body),
                };
            }
            match resp.body {
                // Stray watch events can interleave; skip them.
                Body::Event(_) => {}
                // An id-0 error means the server could not attribute the
                // fault to a request (e.g. malformed frame) — it is ours.
                Body::Err { kind, detail } => return Err(ClientError::Server { kind, detail }),
                Body::Ok(_) => {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "response id {} does not match request id {id}",
                        resp.id
                    ))))
                }
            }
        }
    }

    /// [`Client::request`] unwrapped to the `ok` value.
    pub fn request_ok(&mut self, op: Op) -> Result<Json, ClientError> {
        match self.request(op)? {
            Body::Ok(v) => Ok(v),
            Body::Event(_) => Err(ClientError::Wire(WireError::Malformed(
                "unexpected event frame in request mode".into(),
            ))),
            Body::Err { kind, detail } => Err(ClientError::Server { kind, detail }),
        }
    }

    /// Create a session.
    pub fn create(&mut self, session: &str, spec: SessionSpec) -> Result<Json, ClientError> {
        self.request_ok(Op::Create {
            session: session.into(),
            spec,
        })
    }

    /// Destroy a session.
    pub fn destroy(&mut self, session: &str) -> Result<Json, ClientError> {
        self.request_ok(Op::Destroy {
            session: session.into(),
        })
    }

    /// Apply one command; returns the applied record's JSON (a
    /// `command_rejected` server error carries the rejection reason).
    pub fn cmd(&mut self, session: &str, cmd: SessionCommand) -> Result<Json, ClientError> {
        self.request_ok(Op::Cmd {
            session: session.into(),
            cmd,
        })
    }

    /// Fetch a session's full deterministic event stream text.
    pub fn stream_text(&mut self, session: &str) -> Result<String, ClientError> {
        let v = self.request_ok(Op::Stream {
            session: session.into(),
        })?;
        v.get("stream")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(ClientError::Wire(WireError::Malformed(
                "stream response missing 'stream' field".into(),
            )))
    }

    /// Read a session's knowledge snapshot summary.
    pub fn peek(&mut self, session: &str) -> Result<Json, ClientError> {
        self.request_ok(Op::Peek {
            session: session.into(),
        })
    }

    /// Liveness/occupancy probe.
    pub fn ping(&mut self) -> Result<Json, ClientError> {
        self.request_ok(Op::Ping)
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.request_ok(Op::Shutdown)
    }

    /// Subscribe to a session's trace and hand each deterministic event
    /// line to `on_line` until it returns `false`, the daemon stops, or
    /// the session is destroyed. Consumes the connection (watch mode is
    /// one-way).
    pub fn watch(
        mut self,
        session: &str,
        mut on_line: impl FnMut(&str) -> bool,
    ) -> Result<(), ClientError> {
        let id = self.next_id;
        write_frame_bytes(
            &mut self.stream,
            &encode_request_bytes(
                &Request {
                    id,
                    op: Op::Watch {
                        session: session.into(),
                    },
                },
                self.format,
            ),
        )?;
        loop {
            let payload = match read_frame_bytes(&mut self.stream) {
                Ok(p) => p,
                Err(WireError::Closed) => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            let resp = decode_response_bytes(&payload, self.format)
                .map_err(|f: PayloadFault| WireError::Malformed(f.detail().to_string()))?;
            match resp.body {
                Body::Ok(_) => {}
                Body::Err { kind, detail } => return Err(ClientError::Server { kind, detail }),
                Body::Event(v) => {
                    let line = v.as_str().unwrap_or_default();
                    if !on_line(line) {
                        return Ok(());
                    }
                }
            }
        }
    }
}

/// Outcome of a scripted session run via [`run_script`].
#[derive(Debug, Clone, Default)]
pub struct ScriptReport {
    /// Commands the executor applied.
    pub applied: u64,
    /// Commands the executor rejected.
    pub rejected: u64,
    /// Summed simulated rounds across applied broadcast/multicast
    /// commands (deterministic).
    pub rounds: u64,
    /// Summed delivered targets (deterministic).
    pub delivered: u64,
    /// Summed intended targets (deterministic).
    pub targets: u64,
    /// Client-observed per-command round-trip latencies, microseconds.
    pub latencies_us: Vec<u64>,
    /// The session's deterministic event stream after the script.
    pub stream: String,
}

/// Create `session` from `spec`, apply `cmds` in order, fetch the
/// deterministic stream, and (when `destroy` is set) destroy the
/// session. Rejected commands are counted, not fatal — they are part of
/// the recorded stream.
pub fn run_script(
    client: &mut Client,
    session: &str,
    spec: SessionSpec,
    cmds: &[SessionCommand],
    destroy: bool,
) -> Result<ScriptReport, ClientError> {
    let mut report = ScriptReport::default();
    client.create(session, spec)?;
    for cmd in cmds {
        let start = Instant::now();
        let outcome = client.cmd(session, cmd.clone());
        report.latencies_us.push(start.elapsed().as_micros() as u64);
        match outcome {
            Ok(record) => {
                report.applied += 1;
                if let Some(fields) = record.get("fields") {
                    for (key, slot) in [
                        ("rounds", &mut report.rounds),
                        ("delivered", &mut report.delivered),
                        ("targets", &mut report.targets),
                    ] {
                        if let Some(n) = fields.get(key).and_then(Json::as_i64) {
                            *slot += n.max(0) as u64;
                        }
                    }
                }
            }
            Err(ClientError::Server {
                kind: ErrKind::CommandRejected,
                ..
            }) => report.rejected += 1,
            Err(e) => return Err(e),
        }
    }
    report.stream = client.stream_text(session)?;
    if destroy {
        client.destroy(session)?;
    }
    Ok(report)
}
