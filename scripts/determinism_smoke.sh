#!/usr/bin/env bash
# Campaign determinism smoke: run the same campaign on 1 and 2 worker
# threads and require byte-identical JSON + CSV artifacts.
#
#   scripts/determinism_smoke.sh <axis> [<axis> ...]
#
# Axes (each maps to a fixed campaign flag set; add new axes here, not
# as copy-pasted CI steps):
#   core            protocols × channels × failures × churn
#   mobility        random-waypoint and Gauss-Markov motion
#   loss            lossy channels × repair × transient outages
#   mobility-audit  long-horizon motion with dirty-scoped invariant
#                   auditing on every maintenance epoch
#   server          scripted session through a live thread-engine daemon
#                   vs the same script applied library-direct
#                   (byte-identical streams)
#   server-reactor  same script through a reactor-engine daemon, driven
#                   once over JSON frames and once over negotiated
#                   binary frames, both byte-identical to library-direct
#   resume          crash a journaled campaign at a fixed injected point,
#                   resume from the journal, and require the resumed
#                   artifacts byte-identical to an uninterrupted run
#   scale           10k-node density-scaled broadcast with cell-sharded
#                   parallel delivery: the full traced event stream on
#                   1 thread must be byte-for-byte identical to 2
#                   threads (and to a different shard-cell count)
#   knowledge       dirty-scoped snapshot patching: a churn-heavy traced
#                   session stream and a mobile campaign must be
#                   byte-identical between the patch path and a forced
#                   full-rebuild path (DSNET_KNOWLEDGE_PATCH=off), and
#                   across 1 vs 2 worker threads
#
# Artifacts are left in the working directory as t<axis><threads>.json /
# .csv (tserver_*.stream for the server axis) so CI can upload them on
# failure.
set -euo pipefail

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <core|mobility|loss|mobility-audit|server|server-reactor|resume|scale|knowledge> [...]" >&2
    exit 2
fi

DSNET=(cargo run --release -p dsnet-server --bin dsnet --)

axis_flags() {
    case "$1" in
        core)
            echo "--ns 30,40 --reps 2 --protocols cff,dfo --channels 1,2 \
                  --failures none,bb1@1 --churn none,j2l1"
            ;;
        mobility)
            echo "--ns 30 --reps 2 --protocols cff,dfo \
                  --mobility none,rwp0.05x10p2,gm0.04x10"
            ;;
        loss)
            echo "--ns 30 --reps 2 --protocols cff1,rcff --retries 3 \
                  --loss none,p0.1 --repair off,on --failures none,bb1@1+5,bb1@1"
            ;;
        mobility-audit)
            # Long motion horizons so the per-epoch maintenance loop (and
            # its dirty-scoped DirtyAudit, on by default) dominates the
            # run. Identical artifacts across thread counts prove the
            # audit-on epoch loop — EpochRecord counters included — is
            # deterministic.
            echo "--ns 40,60 --reps 2 --protocols cff \
                  --mobility rwp0.08x40p1,gm0.05x40"
            ;;
        *)
            echo "unknown axis: $1 (want core, mobility, loss, mobility-audit, server, server-reactor, resume, scale, or knowledge)" >&2
            exit 2
            ;;
    esac
}

# Crash-consistency smoke: run a campaign to completion for a baseline,
# run it again under DSNET_CAMPAIGN_CRASH_AFTER with a journal (the
# process aborts mid-campaign by design), then resume from the journal
# and require the resumed artifacts to be byte-identical to the
# uninterrupted baseline.
resume_smoke() {
    local flags="--ns 20,28 --reps 2 --protocols cff,dfo --quiet"
    rm -f tresume.journal
    # shellcheck disable=SC2086  # flags are a curated word list
    "${DSNET[@]}" campaign $flags --threads 2 \
        --json tresume_base.json --csv tresume_base.csv
    # shellcheck disable=SC2086
    if DSNET_CAMPAIGN_CRASH_AFTER=7 "${DSNET[@]}" campaign $flags --threads 2 \
        --json tresume_run.json --csv tresume_run.csv --journal tresume.journal
    then
        echo "crash injection did not fire" >&2
        exit 1
    fi
    # shellcheck disable=SC2086
    "${DSNET[@]}" campaign $flags --threads 2 \
        --json tresume_run.json --csv tresume_run.csv --resume tresume.journal
    cmp tresume_base.json tresume_run.json
    cmp tresume_base.csv tresume_run.csv
}

# Parallel-delivery determinism: one 10k-node broadcast, traced, on 1
# and 2 worker threads (and once more on 2 threads with a different
# spatial-cell count). The engine's contract is that the merged event
# stream never depends on the partition or the worker count, so all
# three stdout streams must be byte-for-byte identical.
scale_smoke() {
    local flags="--nodes 10000 --seed 7 --quiet"
    # shellcheck disable=SC2086  # flags are a curated word list
    "${DSNET[@]}" scale $flags --threads 1 > tscale1.stream
    # shellcheck disable=SC2086
    "${DSNET[@]}" scale $flags --threads 2 > tscale2.stream
    cmp tscale1.stream tscale2.stream
    # A different partition must also be invisible — compare past the
    # header line, which records the cell count by design.
    # shellcheck disable=SC2086
    "${DSNET[@]}" scale $flags --threads 2 --shards 23 > tscale_cells.stream
    cmp <(tail -n +2 tscale1.stream) <(tail -n +2 tscale_cells.stream)
}

# Knowledge-patch determinism: the dirty-scoped snapshot patch must be
# invisible everywhere outcomes are observable.  Two probes:
#
# 1. A churn-heavy scripted session (mobility, departures, arrivals,
#    crashes interleaved with traced broadcasts) run library-direct with
#    the patch path live and again with DSNET_KNOWLEDGE_PATCH=off (every
#    miss pays a full rebuild).  The response streams — whose collision
#    and max_awake fields are digests of each broadcast's recorded
#    trace — must be byte-identical.  The script deliberately has no
#    `snapshot` command: cache_patched is path-dependent by design.
# 2. A mobile campaign across {patch, full-rebuild} × {1, 2 threads}:
#    all four JSON/CSV artifact pairs must be byte-identical.
knowledge_smoke() {
    local script="tknowledge.script"
    cat > "$script" <<'EOS'
{"cmd": "broadcast", "protocol": "cff"}
{"cmd": "mobility", "epochs": 2, "movers": 1, "step_milli": 300}
{"cmd": "broadcast", "protocol": "cff"}
{"cmd": "move_out", "node": 5}
{"cmd": "broadcast", "protocol": "dfo"}
{"cmd": "move_in", "x_milli": 4200, "y_milli": 4700}
{"cmd": "broadcast", "protocol": "cff", "loss_ppm": 30000, "retries": 2, "min_delivery_ppm": 800000}
{"cmd": "kill", "node": 7}
{"cmd": "mobility", "epochs": 3, "movers": 2, "step_milli": 400}
{"cmd": "broadcast", "protocol": "dfo"}
{"cmd": "revive", "node": 7}
{"cmd": "broadcast", "protocol": "cff"}
EOS
    "${DSNET[@]}" direct --script "$script" \
        --nodes 60 --seed 2026 > tknowledge_patch.stream
    DSNET_KNOWLEDGE_PATCH=off "${DSNET[@]}" direct --script "$script" \
        --nodes 60 --seed 2026 > tknowledge_rebuild.stream
    cmp tknowledge_patch.stream tknowledge_rebuild.stream

    local flags="--ns 40 --reps 2 --protocols cff,dfo \
                 --mobility rwp0.06x20p1,gm0.05x15 --quiet"
    for threads in 1 2; do
        # shellcheck disable=SC2086  # flags are a curated word list
        "${DSNET[@]}" campaign $flags --threads "$threads" \
            --json "tknowledge_p${threads}.json" --csv "tknowledge_p${threads}.csv"
        # shellcheck disable=SC2086
        DSNET_KNOWLEDGE_PATCH=off "${DSNET[@]}" campaign $flags --threads "$threads" \
            --json "tknowledge_r${threads}.json" --csv "tknowledge_r${threads}.csv"
    done
    cmp tknowledge_p1.json tknowledge_p2.json
    cmp tknowledge_p1.json tknowledge_r1.json
    cmp tknowledge_r1.json tknowledge_r2.json
    cmp tknowledge_p1.csv tknowledge_p2.csv
    cmp tknowledge_p1.csv tknowledge_r1.csv
    cmp tknowledge_r1.csv tknowledge_r2.csv
}

# Server determinism: boot a unix-socket daemon on the given I/O engine
# ($1: reactor|threads), run a fixed churn-heavy script through
# `client --script` once per requested framing ($2...: "" for JSON,
# "--binary" for negotiated binary frames), run the same script
# library-direct, and require every stream byte-identical.
server_smoke() {
    local engine="$1"; shift
    local sock="tserver-$engine.sock" script="tserver.script" pid framing tag
    rm -f "$sock"
    # Build up front so the daemon's socket-wait window below never
    # races a cold compile.
    cargo build --release -p dsnet-server --bin dsnet
    cat > "$script" <<'EOS'
{"cmd": "broadcast", "protocol": "cff"}
{"cmd": "kill", "node": 3}
{"cmd": "broadcast", "protocol": "dfo", "loss_ppm": 40000, "retries": 2, "min_delivery_ppm": 900000}
{"cmd": "move_out", "node": 5}
{"cmd": "move_in", "x_milli": 4500, "y_milli": 4500}
{"cmd": "mobility", "epochs": 2, "movers": 2, "step_milli": 400}
{"cmd": "revive", "node": 3}
{"cmd": "snapshot"}
EOS
    "${DSNET[@]}" serve --unix "$sock" --io "$engine" --max-sessions 4 --quiet &
    pid=$!
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && break
        sleep 0.1
    done
    [ -S "$sock" ] || { echo "daemon did not come up" >&2; exit 1; }
    "${DSNET[@]}" direct --script "$script" \
        --nodes 40 --seed 2007 > tserver_direct.stream
    for framing in "$@"; do
        tag=json
        [ -n "$framing" ] && tag=binary
        # shellcheck disable=SC2086  # framing is "" or a single flag
        "${DSNET[@]}" client --unix "$sock" $framing \
            --session "smoke-$tag" --script "$script" \
            --nodes 40 --seed 2007 > "tserver_${engine}_${tag}.stream"
        cmp "tserver_${engine}_${tag}.stream" tserver_direct.stream
    done
    "${DSNET[@]}" client --unix "$sock" --shutdown > /dev/null
    wait "$pid"
}

for axis in "$@"; do
    if [ "$axis" = server ]; then
        echo "=== determinism smoke: server ==="
        server_smoke threads ""
        echo "=== server: thread-engine daemon and library-direct streams identical ==="
        continue
    fi
    if [ "$axis" = server-reactor ]; then
        echo "=== determinism smoke: server-reactor ==="
        server_smoke reactor "" "--binary"
        echo "=== server-reactor: reactor daemon (JSON and binary framing) matches library-direct ==="
        continue
    fi
    if [ "$axis" = resume ]; then
        echo "=== determinism smoke: resume ==="
        resume_smoke
        echo "=== resume: resumed artifacts identical to uninterrupted run ==="
        continue
    fi
    if [ "$axis" = scale ]; then
        echo "=== determinism smoke: scale ==="
        scale_smoke
        echo "=== scale: 10k-node traced streams identical across threads and shard cells ==="
        continue
    fi
    if [ "$axis" = knowledge ]; then
        echo "=== determinism smoke: knowledge ==="
        knowledge_smoke
        echo "=== knowledge: patched and full-rebuild paths byte-identical across thread counts ==="
        continue
    fi
    flags=$(axis_flags "$axis")
    echo "=== determinism smoke: $axis ==="
    for threads in 1 2; do
        # shellcheck disable=SC2086  # flags are a curated word list
        "${DSNET[@]}" campaign $flags --threads "$threads" --quiet \
            --json "t${axis}${threads}.json" --csv "t${axis}${threads}.csv"
    done
    cmp "t${axis}1.json" "t${axis}2.json"
    cmp "t${axis}1.csv" "t${axis}2.csv"
    echo "=== $axis: artifacts identical across thread counts ==="
done
