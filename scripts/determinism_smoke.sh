#!/usr/bin/env bash
# Campaign determinism smoke: run the same campaign on 1 and 2 worker
# threads and require byte-identical JSON + CSV artifacts.
#
#   scripts/determinism_smoke.sh <axis> [<axis> ...]
#
# Axes (each maps to a fixed campaign flag set; add new axes here, not
# as copy-pasted CI steps):
#   core            protocols × channels × failures × churn
#   mobility        random-waypoint and Gauss-Markov motion
#   loss            lossy channels × repair × transient outages
#   mobility-audit  long-horizon motion with dirty-scoped invariant
#                   auditing on every maintenance epoch
#
# Artifacts are left in the working directory as t<axis><threads>.json /
# .csv so CI can upload them on failure.
set -euo pipefail

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <core|mobility|loss|mobility-audit> [...]" >&2
    exit 2
fi

DSNET=(cargo run --release -p dsnet --bin dsnet --)

axis_flags() {
    case "$1" in
        core)
            echo "--ns 30,40 --reps 2 --protocols cff,dfo --channels 1,2 \
                  --failures none,bb1@1 --churn none,j2l1"
            ;;
        mobility)
            echo "--ns 30 --reps 2 --protocols cff,dfo \
                  --mobility none,rwp0.05x10p2,gm0.04x10"
            ;;
        loss)
            echo "--ns 30 --reps 2 --protocols cff1,rcff --retries 3 \
                  --loss none,p0.1 --repair off,on --failures none,bb1@1+5,bb1@1"
            ;;
        mobility-audit)
            # Long motion horizons so the per-epoch maintenance loop (and
            # its dirty-scoped DirtyAudit, on by default) dominates the
            # run. Identical artifacts across thread counts prove the
            # audit-on epoch loop — EpochRecord counters included — is
            # deterministic.
            echo "--ns 40,60 --reps 2 --protocols cff \
                  --mobility rwp0.08x40p1,gm0.05x40"
            ;;
        *)
            echo "unknown axis: $1 (want core, mobility, loss, or mobility-audit)" >&2
            exit 2
            ;;
    esac
}

for axis in "$@"; do
    flags=$(axis_flags "$axis")
    echo "=== determinism smoke: $axis ==="
    for threads in 1 2; do
        # shellcheck disable=SC2086  # flags are a curated word list
        "${DSNET[@]}" campaign $flags --threads "$threads" --quiet \
            --json "t${axis}${threads}.json" --csv "t${axis}${threads}.csv"
    done
    cmp "t${axis}1.json" "t${axis}2.json"
    cmp "t${axis}1.csv" "t${axis}2.csv"
    echo "=== $axis: artifacts identical across thread counts ==="
done
