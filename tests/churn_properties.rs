//! Property-based churn testing: arbitrary interleavings of node-move-in
//! and node-move-out must preserve every structural invariant, keep the
//! TDM schedule sound, and leave the network broadcastable.

use dsnet::cluster::invariants;
use dsnet::cluster::slots::validate::validate_condition2;
use dsnet::cluster::{ClusterNet, ParentRule, SlotMode};
use dsnet::graph::NodeId;
use dsnet::protocols::runner::{run_improved, RunConfig};
use proptest::prelude::*;

/// One churn step, interpreted against the current structure.
#[derive(Debug, Clone)]
enum Step {
    /// Join hearing up to three existing nodes (indices are taken modulo
    /// the current attached population).
    Join(u16, u16, u16),
    /// Attempt to remove the node at this index (mod population); cut
    /// vertices and the root legitimately refuse.
    Leave(u16),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (any::<u16>(), any::<u16>(), any::<u16>()).prop_map(|(a, b, c)| Step::Join(a, b, c)),
        1 => any::<u16>().prop_map(Step::Leave),
    ]
}

fn attached(net: &ClusterNet) -> Vec<NodeId> {
    net.tree().nodes().collect()
}

fn apply(net: &mut ClusterNet, step: &Step) {
    match step {
        Step::Join(a, b, c) => {
            let nodes = attached(net);
            if nodes.is_empty() {
                net.move_in(&[]).unwrap();
                return;
            }
            let mut nbrs: Vec<NodeId> = [a, b, c]
                .iter()
                .map(|&&i| nodes[i as usize % nodes.len()])
                .collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            net.move_in(&nbrs).unwrap();
        }
        Step::Leave(i) => {
            let nodes = attached(net);
            if nodes.len() <= 2 {
                return;
            }
            let victim = nodes[*i as usize % nodes.len()];
            // Refusals (root / cut vertex) are part of the contract.
            let _ = net.move_out(victim);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn churn_preserves_invariants(steps in prop::collection::vec(step_strategy(), 1..60)) {
        for mode in [SlotMode::Strict, SlotMode::PaperFaithful] {
            let mut net = ClusterNet::new(ParentRule::LowestId, mode);
            net.move_in(&[]).unwrap();
            for step in &steps {
                apply(&mut net, step);
            }
            invariants::check_core(&net).map_err(|v| {
                TestCaseError::fail(format!("{mode:?}: {v:?}"))
            })?;
            let violations = validate_condition2(&net.view(), net.slots(), mode);
            prop_assert!(violations.is_empty(), "{mode:?}: {violations:?}");
        }
    }

    #[test]
    fn churned_networks_still_broadcast(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let mut net = ClusterNet::new(ParentRule::LowestId, SlotMode::Strict);
        net.move_in(&[]).unwrap();
        for step in &steps {
            apply(&mut net, step);
        }
        let out = run_improved(&net, net.root(), &RunConfig::default());
        prop_assert_eq!(out.delivered, out.targets,
            "delivery {}/{} after churn", out.delivered, out.targets);
        prop_assert!(out.rounds <= out.bound);
    }

    #[test]
    fn move_out_move_in_cycles_preserve_invariants(
        grow in prop::collection::vec(step_strategy(), 8..30),
        cycles in prop::collection::vec(any::<u16>(), 1..25),
    ) {
        // The mobility maintenance driver's core cycle: a node withdraws
        // via node-move-out and immediately re-joins hearing whatever is
        // left of its old neighbourhood (its fresh id stands in for the
        // same physical sensor at a new position). Arbitrary interleavings
        // of that cycle must preserve every invariant — including when the
        // re-join lands next to nodes the departure itself re-homed.
        let mut net = ClusterNet::new(ParentRule::LowestId, SlotMode::Strict);
        net.move_in(&[]).unwrap();
        for step in &grow {
            apply(&mut net, step);
        }
        for &pick in &cycles {
            let nodes = attached(&net);
            if nodes.len() <= 2 {
                break;
            }
            let victim = nodes[pick as usize % nodes.len()];
            let old_nbrs: Vec<NodeId> = net.graph().neighbors(victim).to_vec();
            if net.move_out(victim).is_err() {
                continue; // root / cut vertex: refusal is part of the contract
            }
            // Re-insert hearing the surviving old neighbourhood; if the
            // departure orphaned all of it, fall back to any attached node.
            let alive: Vec<NodeId> = old_nbrs
                .into_iter()
                .filter(|&u| net.tree().contains(u))
                .collect();
            let nbrs = if alive.is_empty() {
                vec![attached(&net)[0]]
            } else {
                alive
            };
            net.move_in(&nbrs).unwrap();
            invariants::check_core(&net).map_err(|v| {
                TestCaseError::fail(format!("after cycling {victim:?}: {v:?}"))
            })?;
        }
        let violations = validate_condition2(&net.view(), net.slots(), SlotMode::Strict);
        prop_assert!(violations.is_empty(), "{violations:?}");
        let out = run_improved(&net, net.root(), &RunConfig::default());
        prop_assert_eq!(out.delivered, out.targets);
    }

    #[test]
    fn parent_rules_both_stay_sound(steps in prop::collection::vec(step_strategy(), 1..40)) {
        for rule in [ParentRule::LowestId, ParentRule::HighestDegree] {
            let mut net = ClusterNet::new(rule, SlotMode::Strict);
            net.move_in(&[]).unwrap();
            for step in &steps {
                apply(&mut net, step);
            }
            invariants::check_core(&net).map_err(|v| {
                TestCaseError::fail(format!("{rule:?}: {v:?}"))
            })?;
        }
    }
}
