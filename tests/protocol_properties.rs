//! Property-based protocol testing on randomly grown networks: every
//! protocol delivers, respects its analytic bound, and the multicast
//! reaches exactly its group (up to the documented pruning caveat, which
//! strict slots plus these small random structures never trigger — any
//! regression here is a real bug).

use dsnet::cluster::{GroupId, McNet};
use dsnet::graph::NodeId;
use dsnet::protocols::runner::{
    run_cff_basic, run_dfo, run_improved, run_multicast, run_multicast_reliable, RunConfig,
};
use proptest::prelude::*;

/// Grow a random connected structure from a neighbour-choice seed list.
/// Element i (three u16s) decides which earlier nodes node i+1 hears.
fn grow(seeds: &[(u16, u16, u16)], groups_mod: u16) -> McNet {
    let mut mc = McNet::with_defaults();
    mc.move_in(&[], &[0]).unwrap();
    for (i, &(a, b, c)) in seeds.iter().enumerate() {
        let existing = i + 1;
        let mut nbrs: Vec<NodeId> = [a, b, c]
            .iter()
            .map(|&x| NodeId((x as usize % existing) as u32))
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        let g: Vec<GroupId> = if groups_mod > 0 && (i as u16).is_multiple_of(groups_mod) {
            vec![1]
        } else {
            vec![]
        };
        mc.move_in(&nbrs, &g).unwrap();
    }
    mc
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_protocols_deliver_on_random_growth(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 2..50),
        source_pick in any::<u16>(),
    ) {
        let mc = grow(&seeds, 0);
        let net = mc.net();
        let nodes: Vec<NodeId> = net.tree().nodes().collect();
        let source = nodes[source_pick as usize % nodes.len()];
        let cfg = RunConfig::default();

        let dfo = run_dfo(net, source, &cfg);
        prop_assert_eq!(dfo.delivered, dfo.targets, "DFO");
        prop_assert!(dfo.rounds <= dfo.bound);

        let cff1 = run_cff_basic(net, source, &cfg);
        prop_assert_eq!(cff1.delivered, cff1.targets, "CFF1");
        prop_assert!(cff1.rounds <= cff1.bound);

        let cff2 = run_improved(net, source, &cfg);
        prop_assert_eq!(cff2.delivered, cff2.targets, "CFF2");
        prop_assert!(cff2.rounds <= cff2.bound);
    }

    #[test]
    fn multichannel_never_regresses(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 2..40),
        k in 2u8..6,
    ) {
        let mc = grow(&seeds, 0);
        let net = mc.net();
        let base = run_improved(net, net.root(), &RunConfig::default());
        let multi = run_improved(net, net.root(), &RunConfig { channels: k, ..Default::default() });
        prop_assert_eq!(multi.delivered, multi.targets, "k={}", k);
        prop_assert!(multi.rounds <= base.rounds, "k={}: {} > {}", k, multi.rounds, base.rounds);
    }

    #[test]
    fn reliable_multicast_covers_group_exactly(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 4..50),
        group_mod in 2u16..6,
    ) {
        let mc = grow(&seeds, group_mod);
        let net = mc.net();
        let cfg = RunConfig::default();
        // Session slots make the pruned transmitter set provably
        // collision-free for the participants: exact delivery required.
        let mcast = run_multicast_reliable(&mc, net.root(), 1, &cfg);
        prop_assert_eq!(mcast.delivered, mcast.targets,
            "reliable multicast {}/{}", mcast.delivered, mcast.targets);

        let bcast = run_improved(net, net.root(), &cfg);
        let m_work = mcast.energy.total_listen + mcast.energy.total_tx;
        let b_work = bcast.energy.total_listen + bcast.energy.total_tx;
        prop_assert!(m_work <= b_work, "pruned work {} > broadcast work {}", m_work, b_work);
        // Session slots are a from-scratch greedy assignment, so the pruned
        // windows are usually — not provably — no larger than the
        // incremental broadcast's; what is guaranteed is the session bound.
        prop_assert!(mcast.rounds <= mcast.bound);
    }

    #[test]
    fn paper_multicast_prunes_and_mostly_delivers(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 4..50),
        group_mod in 2u16..6,
    ) {
        // The paper's multicast reuses broadcast slots; muting transmitters
        // can break Condition 2 at a receiver (documented caveat), so the
        // guarantee here is statistical, never a regression beyond the
        // reliable variant's exactness.
        let mc = grow(&seeds, group_mod);
        let net = mc.net();
        let cfg = RunConfig::default();
        let mcast = run_multicast(&mc, net.root(), 1, &cfg);
        prop_assert!(mcast.delivery_ratio() >= 0.5,
            "paper multicast collapsed: {}/{}", mcast.delivered, mcast.targets);
        let bcast = run_improved(net, net.root(), &cfg);
        let m_work = mcast.energy.total_listen + mcast.energy.total_tx;
        let b_work = bcast.energy.total_listen + bcast.energy.total_tx;
        prop_assert!(m_work <= b_work);
    }

    #[test]
    fn awake_bound_holds_for_every_node(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 2..40),
    ) {
        let mc = grow(&seeds, 0);
        let net = mc.net();
        let k = dsnet::protocols::knowledge::build_knowledge(net);
        let out = run_improved(net, net.root(), &RunConfig::default());
        let bound = dsnet::protocols::analytic::improved_awake_bound(&k, 1);
        prop_assert!(out.energy.max_awake <= bound,
            "awake {} > bound {}", out.energy.max_awake, bound);
    }

    #[test]
    fn dfo_round_count_is_exact(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 2..40),
    ) {
        let mc = grow(&seeds, 0);
        let net = mc.net();
        let out = run_dfo(net, net.root(), &RunConfig::default());
        // From a backbone source the tour is exactly 2(|BT|−1) rounds.
        prop_assert_eq!(out.rounds, out.bound);
    }
}
