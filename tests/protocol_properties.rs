//! Property-based protocol testing on randomly grown networks: every
//! protocol delivers, respects its analytic bound, and the multicast
//! reaches exactly its group (up to the documented pruning caveat, which
//! strict slots plus these small random structures never trigger — any
//! regression here is a real bug).

use dsnet::cluster::{GroupId, McNet};
use dsnet::graph::NodeId;
use dsnet::protocols::runner::{
    run_cff_basic, run_dfo, run_improved, run_multicast, run_multicast_reliable, RunConfig,
};
use proptest::prelude::*;

/// Grow a random connected structure from a neighbour-choice seed list.
/// Element i (three u16s) decides which earlier nodes node i+1 hears.
fn grow(seeds: &[(u16, u16, u16)], groups_mod: u16) -> McNet {
    let mut mc = McNet::with_defaults();
    mc.move_in(&[], &[0]).unwrap();
    for (i, &(a, b, c)) in seeds.iter().enumerate() {
        let existing = i + 1;
        let mut nbrs: Vec<NodeId> = [a, b, c]
            .iter()
            .map(|&x| NodeId((x as usize % existing) as u32))
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        let g: Vec<GroupId> = if groups_mod > 0 && (i as u16).is_multiple_of(groups_mod) {
            vec![1]
        } else {
            vec![]
        };
        mc.move_in(&nbrs, &g).unwrap();
    }
    mc
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_protocols_deliver_on_random_growth(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 2..50),
        source_pick in any::<u16>(),
    ) {
        let mc = grow(&seeds, 0);
        let net = mc.net();
        let nodes: Vec<NodeId> = net.tree().nodes().collect();
        let source = nodes[source_pick as usize % nodes.len()];
        let cfg = RunConfig::default();

        let dfo = run_dfo(net, source, &cfg);
        prop_assert_eq!(dfo.delivered, dfo.targets, "DFO");
        prop_assert!(dfo.rounds <= dfo.bound);

        let cff1 = run_cff_basic(net, source, &cfg);
        prop_assert_eq!(cff1.delivered, cff1.targets, "CFF1");
        prop_assert!(cff1.rounds <= cff1.bound);

        let cff2 = run_improved(net, source, &cfg);
        prop_assert_eq!(cff2.delivered, cff2.targets, "CFF2");
        prop_assert!(cff2.rounds <= cff2.bound);
    }

    #[test]
    fn multichannel_never_regresses(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 2..40),
        k in 2u8..6,
    ) {
        let mc = grow(&seeds, 0);
        let net = mc.net();
        let base = run_improved(net, net.root(), &RunConfig::default());
        let multi = run_improved(net, net.root(), &RunConfig { channels: k, ..Default::default() });
        prop_assert_eq!(multi.delivered, multi.targets, "k={}", k);
        prop_assert!(multi.rounds <= base.rounds, "k={}: {} > {}", k, multi.rounds, base.rounds);
    }

    #[test]
    fn reliable_multicast_covers_group_exactly(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 4..50),
        group_mod in 2u16..6,
    ) {
        let mc = grow(&seeds, group_mod);
        let net = mc.net();
        let cfg = RunConfig::default();
        // Session slots make the pruned transmitter set provably
        // collision-free for the participants: exact delivery required.
        let mcast = run_multicast_reliable(&mc, net.root(), 1, &cfg);
        prop_assert_eq!(mcast.delivered, mcast.targets,
            "reliable multicast {}/{}", mcast.delivered, mcast.targets);

        let bcast = run_improved(net, net.root(), &cfg);
        let m_work = mcast.energy.total_listen + mcast.energy.total_tx;
        let b_work = bcast.energy.total_listen + bcast.energy.total_tx;
        prop_assert!(m_work <= b_work, "pruned work {} > broadcast work {}", m_work, b_work);
        // Session slots are a from-scratch greedy assignment, so the pruned
        // windows are usually — not provably — no larger than the
        // incremental broadcast's; what is guaranteed is the session bound.
        prop_assert!(mcast.rounds <= mcast.bound);
    }

    #[test]
    fn paper_multicast_prunes_and_mostly_delivers(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 4..50),
        group_mod in 2u16..6,
    ) {
        // The paper's multicast reuses broadcast slots; muting transmitters
        // can break Condition 2 at a receiver (documented caveat), so the
        // guarantee here is statistical, never a regression beyond the
        // reliable variant's exactness.
        let mc = grow(&seeds, group_mod);
        let net = mc.net();
        let cfg = RunConfig::default();
        let mcast = run_multicast(&mc, net.root(), 1, &cfg);
        prop_assert!(mcast.delivery_ratio() >= 0.5,
            "paper multicast collapsed: {}/{}", mcast.delivered, mcast.targets);
        let bcast = run_improved(net, net.root(), &cfg);
        let m_work = mcast.energy.total_listen + mcast.energy.total_tx;
        let b_work = bcast.energy.total_listen + bcast.energy.total_tx;
        prop_assert!(m_work <= b_work);
    }

    #[test]
    fn awake_bound_holds_for_every_node(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 2..40),
    ) {
        let mc = grow(&seeds, 0);
        let net = mc.net();
        let k = dsnet::protocols::knowledge::build_knowledge(net);
        let out = run_improved(net, net.root(), &RunConfig::default());
        let bound = dsnet::protocols::analytic::improved_awake_bound(&k, 1);
        prop_assert!(out.energy.max_awake <= bound,
            "awake {} > bound {}", out.energy.max_awake, bound);
    }

    #[test]
    fn dfo_round_count_is_exact(
        seeds in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 2..40),
    ) {
        let mc = grow(&seeds, 0);
        let net = mc.net();
        let out = run_dfo(net, net.root(), &RunConfig::default());
        // From a backbone source the tour is exactly 2(|BT|−1) rounds.
        prop_assert_eq!(out.rounds, out.bound);
    }

    #[test]
    fn collision_freedom_on_random_unit_disk_graphs(
        seed in any::<u64>(),
        n in 20usize..70,
        k in 1u8..4,
    ) {
        // Collision-freedom on random connected unit-disk deployments.
        //
        // What the slot construction actually guarantees (and what we
        // assert) is slightly finer than "zero collision events":
        //
        // * DFO has a single token holder per round — no two transmitters
        //   ever share a round, so the trace records zero collisions.
        // * CFF Algorithm 1 transmits in per-depth windows whose slots
        //   satisfy Condition 1/2 pairwise — zero collisions.
        // * CFF Algorithm 2 (improved) with k ≥ 2 channels has every leaf
        //   tune to its one designated phase-2 slot — zero collisions.
        // * CFF Algorithm 2 with k = 1 makes leaves listen through the
        //   whole shared phase-2 window; strict slots guarantee each leaf
        //   ONE clean slot, not pairwise-distinct slots across its entire
        //   internal neighbourhood, so a leaf legally observes collisions
        //   at duplicated slots it is not assigned to. Those events are
        //   benign: full delivery proves every leaf's designated slot was
        //   clean. We assert exactly that.
        let net = dsnet::NetworkBuilder::paper_field(10.0, n, seed)
            .build()
            .unwrap();
        let cfg = RunConfig { channels: k, ..Default::default() };
        let sink = net.sink();

        let dfo = net.broadcast_from(dsnet::Protocol::Dfo, sink, &cfg);
        prop_assert!(dfo.completed());
        prop_assert_eq!(dfo.collisions, Some(0), "DFO must be collision-free");

        let cff1 = net.broadcast_from(dsnet::Protocol::BasicCff, sink, &cfg);
        prop_assert!(cff1.completed());
        prop_assert_eq!(cff1.collisions, Some(0), "CFF Alg 1 must be collision-free");

        let cff2 = net.broadcast_from(dsnet::Protocol::ImprovedCff, sink, &cfg);
        prop_assert!(cff2.completed(), "CFF Alg 2 must deliver everywhere");
        if k >= 2 {
            prop_assert_eq!(
                cff2.collisions,
                Some(0),
                "CFF Alg 2 with k={} channels must be collision-free",
                k
            );
        }
    }
}

/// Regression pin for the documented k=1 behaviour above: on a fixed
/// deployment, improved CFF on a single channel records a *positive*
/// benign collision count (leaves listening through the shared phase-2
/// window) while still delivering everywhere, and the same network on
/// k=2 channels is fully collision-free. If a future slot or runner
/// change silently alters either side of this contrast, this fails.
#[test]
fn improved_cff_k1_leaf_window_collisions_are_benign_and_pinned() {
    let net = dsnet::NetworkBuilder::paper_field(10.0, 60, 1)
        .build()
        .unwrap();
    let sink = net.sink();

    let k1 = net.broadcast_from(
        dsnet::Protocol::ImprovedCff,
        sink,
        &RunConfig {
            channels: 1,
            ..Default::default()
        },
    );
    assert!(k1.completed(), "k=1: {}/{}", k1.delivered, k1.targets);
    let collisions = k1.collisions.expect("trace records collisions");
    assert!(
        collisions > 0,
        "k=1 improved CFF on this deployment is expected to observe \
         benign leaf-window collisions; observing none means the slot \
         construction changed (update the documented contract if so)"
    );

    let k2 = net.broadcast_from(
        dsnet::Protocol::ImprovedCff,
        sink,
        &RunConfig {
            channels: 2,
            ..Default::default()
        },
    );
    assert!(k2.completed());
    assert_eq!(
        k2.collisions,
        Some(0),
        "k=2 designates one phase-2 slot per leaf — collision-free"
    );
}
