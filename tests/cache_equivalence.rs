//! The knowledge cache is a pure memoisation: broadcasts served through
//! [`SensorNetwork`]'s version-keyed [`KnowledgeCache`] must be
//! *byte-identical* — same outcome, same [`TraceEvent`] stream, same
//! warnings — to runs over a knowledge snapshot rebuilt from scratch,
//! no matter what sequence of structural mutations (churn, repair)
//! preceded them, and campaign artifacts must stay thread-invariant
//! across every axis (loss, repair, mobility) now that trials run
//! through the cache.
//!
//! Also pins the diagnostic-warning contract: the benign k=1
//! leaf-window collision note of Algorithm 2 travels on the trace, never
//! on stderr, and disabled traces carry no warnings at all.

use dsnet::campaign_engine::{render_csv, render_json, CampaignSpec, MobilitySpec, ProtocolSpec};
use dsnet::cluster::repair::RepairConfig;
use dsnet::graph::NodeId;
use dsnet::protocols::knowledge::build_knowledge;
use dsnet::protocols::runner::{
    run_cff_basic_traced, run_cff_reliable_traced, run_dfo_traced, run_improved_traced,
    BroadcastOutcome, RunConfig,
};
use dsnet::radio::{LossModel, Trace};
use dsnet::{NetworkBuilder, Protocol, SensorNetwork};
use proptest::prelude::*;

/// Apply a mutation sequence driven by proptest-chosen picks: leaves,
/// joins (near a surviving node), and crash-repairs. Operations that the
/// structure legitimately refuses (e.g. evicting the sink) are skipped —
/// the point is to scramble the structure version, not to model churn
/// precisely.
fn mutate(net: &mut SensorNetwork, ops: &[(u8, u16)]) {
    for &(op, pick) in ops {
        let nodes: Vec<NodeId> = net.net().tree().nodes().collect();
        if nodes.len() <= 2 {
            break;
        }
        let victim = nodes[pick as usize % nodes.len()];
        match op % 3 {
            0 => {
                let _ = net.leave(victim);
            }
            1 => {
                let p = net.position(victim);
                let theta = (pick as f64) * 0.37;
                let q = dsnet::geom::Point2::new(p.x + 0.3 * theta.cos(), p.y + 0.3 * theta.sin());
                let _ = net.join(q, &[]);
            }
            _ => {
                let _ = net.repair_crash(victim, &RepairConfig::default());
            }
        }
    }
    net.check();
}

/// Run `protocol` twice — once through the network's cache, once over a
/// freshly built knowledge snapshot — and demand identical results.
fn assert_cached_matches_fresh(net: &SensorNetwork, protocol: Protocol, cfg: &RunConfig) {
    let source = net.sink();
    let (cached_out, cached_trace): (BroadcastOutcome, Trace) =
        net.broadcast_traced(protocol, source, cfg);
    let fresh_k = build_knowledge(net.net());
    let (fresh_out, fresh_trace) = match protocol {
        Protocol::Dfo => run_dfo_traced(net.net(), &fresh_k, source, cfg),
        Protocol::BasicCff => run_cff_basic_traced(net.net(), &fresh_k, source, cfg),
        Protocol::ImprovedCff => run_improved_traced(net.net(), &fresh_k, source, cfg),
        Protocol::ReliableCff => run_cff_reliable_traced(net.net(), &fresh_k, source, cfg),
    };
    assert_eq!(cached_out.rounds, fresh_out.rounds, "{protocol:?} rounds");
    assert_eq!(
        cached_out.delivered, fresh_out.delivered,
        "{protocol:?} delivered"
    );
    assert_eq!(
        cached_out.targets, fresh_out.targets,
        "{protocol:?} targets"
    );
    assert_eq!(cached_out.bound, fresh_out.bound, "{protocol:?} bound");
    assert_eq!(
        cached_out.collisions, fresh_out.collisions,
        "{protocol:?} collisions"
    );
    assert_eq!(
        cached_trace.events(),
        fresh_trace.events(),
        "{protocol:?} trace events diverged between cached and fresh knowledge"
    );
    assert_eq!(
        cached_trace.warnings(),
        fresh_trace.warnings(),
        "{protocol:?} warnings diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The tentpole equivalence: for any mutation history, every
    /// protocol's cached run equals its from-scratch run — lossless and
    /// under seeded channel loss.
    #[test]
    fn cached_broadcasts_equal_uncached_after_arbitrary_mutations(
        n in 30usize..80,
        seed in 0u64..500,
        ops in prop::collection::vec((any::<u8>(), any::<u16>()), 0..12),
    ) {
        let mut net = NetworkBuilder::paper_field(10.0, n, seed).build().unwrap();
        mutate(&mut net, &ops);

        let cfg = RunConfig::default();
        for protocol in [
            Protocol::Dfo,
            Protocol::BasicCff,
            Protocol::ImprovedCff,
            Protocol::ReliableCff,
        ] {
            assert_cached_matches_fresh(&net, protocol, &cfg);
        }

        // Seeded loss: the LossModel stream is a function of (seed, round,
        // edge), so cached and fresh runs see identical drop decisions.
        let lossy = RunConfig {
            loss: LossModel::from_ppm(100_000, seed ^ 0xBEEF),
            max_retries: 3,
            ..RunConfig::default()
        };
        assert_cached_matches_fresh(&net, Protocol::ReliableCff, &lossy);
    }
}

/// Deterministic (non-proptest) spot check: a cache that survives an
/// explicit leave → join → repair chain still matches from-scratch runs
/// at every step, not just at the end.
#[test]
fn cache_stays_fresh_across_each_mutation_step() {
    let mut net = NetworkBuilder::paper_field(10.0, 60, 9).build().unwrap();
    assert_cached_matches_fresh(&net, Protocol::ImprovedCff, &RunConfig::default());

    let nodes: Vec<NodeId> = net.net().tree().nodes().collect();
    let victim = *nodes.iter().rev().find(|&&u| u != net.sink()).unwrap();
    net.leave(victim).unwrap();
    assert_cached_matches_fresh(&net, Protocol::ImprovedCff, &RunConfig::default());

    let anchor = net.position(net.sink());
    net.join(
        dsnet::geom::Point2::new(anchor.x + 0.2, anchor.y + 0.1),
        &[],
    )
    .unwrap();
    assert_cached_matches_fresh(&net, Protocol::Dfo, &RunConfig::default());

    let nodes: Vec<NodeId> = net.net().tree().nodes().collect();
    let crash = *nodes.iter().rev().find(|&&u| u != net.sink()).unwrap();
    net.repair_crash(crash, &RepairConfig::default()).unwrap();
    assert_cached_matches_fresh(&net, Protocol::BasicCff, &RunConfig::default());
}

/// Small churn must be served by the dirty-scoped patch path, not a full
/// rebuild — and the patched snapshots must still drive broadcasts
/// byte-identical to from-scratch knowledge. Leaving a pure member
/// dirties only its neighbourhood, far under the patch threshold, so
/// every post-churn miss here is required to patch.
#[test]
fn small_churn_is_served_by_the_patch_path() {
    use dsnet::cluster::NodeStatus;
    let mut net = NetworkBuilder::paper_field(10.0, 80, 4).build().unwrap();
    // Prime the cache: the first miss is necessarily a full build.
    assert_cached_matches_fresh(&net, Protocol::ImprovedCff, &RunConfig::default());
    let (_, misses0, patched0) = net.knowledge_stats();

    let churns = 4u64;
    for round in 0..churns as usize {
        let members: Vec<NodeId> = net
            .net()
            .tree()
            .nodes()
            .filter(|&u| u != net.sink() && net.net().status(u) == NodeStatus::PureMember)
            .collect();
        let victim = members[(round * 7) % members.len()];
        net.leave(victim).unwrap();
        assert_cached_matches_fresh(&net, Protocol::ImprovedCff, &RunConfig::default());
    }

    let (_, misses1, patched1) = net.knowledge_stats();
    assert_eq!(
        misses1 - misses0,
        churns,
        "each mutation must invalidate exactly one snapshot"
    );
    assert_eq!(
        patched1 - patched0,
        churns,
        "member-scale churn must be served by patches, not rebuilds"
    );
}

/// Campaign artifacts remain byte-identical across thread counts with
/// the cache in the trial path — including the loss, repair and mobility
/// axes, whose trials mutate structures mid-trial.
#[test]
fn campaign_artifacts_thread_invariant_across_all_axes() {
    use dsnet::campaign_engine::{ChurnTemplate, FailureTemplate, LossSpec};
    let spec = CampaignSpec {
        name: "cache-equivalence".into(),
        field_side: 10.0,
        ns: vec![40],
        reps: 2,
        base_seed: 11,
        protocols: vec![ProtocolSpec::ImprovedCff, ProtocolSpec::ReliableCff],
        channels: vec![1],
        failures: vec![
            FailureTemplate::None,
            FailureTemplate::Backbone { count: 1, round: 1 },
        ],
        churn: vec![
            ChurnTemplate::default(),
            ChurnTemplate {
                joins: 2,
                leaves: 1,
            },
        ],
        losses: vec![LossSpec::none(), LossSpec::from_probability(0.05)],
        repair: vec![false, true],
        mobility: vec![
            MobilitySpec::None,
            MobilitySpec::RandomWaypoint {
                speed_milli: 50,
                pause: 2,
                epochs: 5,
            },
        ],
        max_retries: 3,
        record_trace: true,
    };
    let one = dsnet::campaign::run(&spec, 1, None);
    let two = dsnet::campaign::run(&spec, 2, None);
    assert_eq!(
        render_json(&one, true),
        render_json(&two, true),
        "campaign JSON artifact depends on thread count"
    );
    assert_eq!(render_csv(&one), render_csv(&two));
}

/// The benign k=1 leaf-window collision note is trace data: present on
/// k=1 runs that observe collisions, absent on k=2 (provably
/// collision-free), and never emitted when tracing is off.
#[test]
fn k1_leaf_window_warning_travels_on_the_trace() {
    let net = NetworkBuilder::paper_field(10.0, 60, 1).build().unwrap();
    let sink = net.sink();

    let k1 = RunConfig {
        channels: 1,
        ..RunConfig::default()
    };
    let (out, trace) = net.broadcast_traced(Protocol::ImprovedCff, sink, &k1);
    assert!(out.completed());
    assert!(
        out.collisions.unwrap() > 0,
        "this deployment is the pinned k=1 collision witness"
    );
    assert_eq!(trace.warnings().len(), 1, "exactly one diagnostic note");
    assert!(
        trace.warnings()[0].contains("leaf-window"),
        "unexpected warning text: {}",
        trace.warnings()[0]
    );

    let k2 = RunConfig {
        channels: 2,
        ..RunConfig::default()
    };
    let (out2, trace2) = net.broadcast_traced(Protocol::ImprovedCff, sink, &k2);
    assert_eq!(out2.collisions, Some(0));
    assert!(trace2.warnings().is_empty(), "k=2 is collision-free");

    let untraced = RunConfig {
        channels: 1,
        record_trace: false,
        ..RunConfig::default()
    };
    let (_, silent) = net.broadcast_traced(Protocol::ImprovedCff, sink, &untraced);
    assert!(
        silent.warnings().is_empty(),
        "disabled traces must not accumulate warnings"
    );
}
