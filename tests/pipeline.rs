//! End-to-end integration: deployment → unit-disk graph → incremental
//! CNet construction → TDM slots → every protocol on the radio simulator,
//! checked against the paper's theorems on realistic (paper-parameter)
//! networks.

use dsnet::cluster::invariants;
use dsnet::cluster::slots::validate::validate_condition2;
use dsnet::graph::{components, degree};
use dsnet::protocols::analytic;
use dsnet::protocols::knowledge::build_knowledge;
use dsnet::protocols::runner::RunConfig;
use dsnet::{NetworkBuilder, Protocol};

#[test]
fn paper_network_full_pipeline() {
    for (n, seed) in [(100usize, 1u64), (250, 2), (400, 3)] {
        let net = NetworkBuilder::paper(n, seed).build().unwrap();

        // Structure: spanning, connected, invariant-clean.
        assert_eq!(net.net().tree().len(), n);
        assert!(components::is_connected(net.net().graph()));
        invariants::check_growth(net.net()).unwrap_or_else(|v| panic!("n={n}: {v:?}"));
        let violations =
            validate_condition2(&net.net().view(), net.net().slots(), net.net().mode());
        assert!(violations.is_empty(), "n={n}: {violations:?}");

        // Protocols: full delivery within the analytic bounds.
        for p in [Protocol::ImprovedCff, Protocol::BasicCff, Protocol::Dfo] {
            let out = net.broadcast(p);
            assert!(
                out.completed(),
                "n={n} {p:?}: {}/{}",
                out.delivered,
                out.targets
            );
            assert!(
                out.rounds <= out.bound,
                "n={n} {p:?}: {} > {}",
                out.rounds,
                out.bound
            );
        }
    }
}

#[test]
fn theorem1_bounds_hold_quantitatively() {
    let net = NetworkBuilder::paper(300, 9).build().unwrap();
    let k = build_knowledge(net.net());

    let out = net.broadcast(Protocol::ImprovedCff);
    // Rounds ≤ δ·h_BT + Δ.
    assert!(out.rounds <= k.delta_b as u64 * k.bt_height as u64 + k.delta_l as u64);
    // Awake ≤ 2δ + Δ for every node.
    assert!(out.energy.max_awake <= analytic::improved_awake_bound(&k, 1));
}

#[test]
fn lemma3_slot_bounds_hold_on_unit_disk_graphs() {
    for seed in 10..16 {
        let net = NetworkBuilder::paper(200, seed).build().unwrap();
        let g = net.net().graph();
        let big_d = degree::max_degree(g) as u32;
        let small_d = degree::induced_max_degree(g, &net.net().backbone_nodes()) as u32;
        let (b_bound, l_bound) = analytic::slot_bounds(small_d, big_d);
        assert!(net.net().delta_b() <= b_bound);
        assert!(net.net().delta_l() <= l_bound);
        // The paper's empirical remark: measured slots even below d and D.
        assert!(net.net().delta_b() <= small_d.max(1));
        assert!(net.net().delta_l() <= big_d);
    }
}

#[test]
fn property1_cluster_bound_on_unit_disk_graphs() {
    use dsnet::graph::domset::greedy_dominating_set;
    for seed in 20..24 {
        let net = NetworkBuilder::paper(250, seed).build().unwrap();
        let (heads, gateways, _m) = net.net().status_counts();
        // Property 1(3): #clusters ≤ 5·|MDS| ≤ 5·|greedy DS|.
        let greedy = greedy_dominating_set(net.net().graph());
        assert!(
            heads <= 5 * greedy.len(),
            "seed {seed}: {heads} heads > 5×{} greedy dominators",
            greedy.len()
        );
        // Property 1(1): |BT| ≤ 2·#clusters − 1.
        assert!(heads + gateways < 2 * heads);
    }
}

#[test]
fn multichannel_scaling_matches_theorem_1_3() {
    let net = NetworkBuilder::paper(350, 30).build().unwrap();
    let k = build_knowledge(net.net());
    let mut rounds_by_k = Vec::new();
    for channels in [1u8, 2, 4] {
        let cfg = RunConfig {
            channels,
            ..Default::default()
        };
        let out = net.broadcast_from(Protocol::ImprovedCff, net.sink(), &cfg);
        assert!(out.completed(), "k={channels}");
        assert!(out.rounds <= analytic::improved_bound(&k, 0, channels));
        rounds_by_k.push(out.rounds);
    }
    assert!(rounds_by_k[1] <= rounds_by_k[0]);
    assert!(rounds_by_k[2] <= rounds_by_k[1]);
}

#[test]
fn broadcast_from_every_tenth_node_completes() {
    let net = NetworkBuilder::paper(150, 40).build().unwrap();
    let sources: Vec<_> = net.net().tree().nodes().step_by(10).collect();
    for s in sources {
        let out = net.broadcast_from(Protocol::ImprovedCff, s, &RunConfig::default());
        assert!(
            out.completed(),
            "source {s}: {}/{}",
            out.delivered,
            out.targets
        );
    }
}
