//! Scale and link-failure integration tests.
//!
//! The paper tests "from 64 to 720" nodes; this suite covers both ends of
//! that range end-to-end, plus the link-failure robustness the paper
//! mentions alongside node failures in Section 3.3.

use dsnet::protocols::runner::RunConfig;
use dsnet::{NetworkBuilder, Protocol};

#[test]
fn paper_min_and_max_scales_work_end_to_end() {
    for n in [64usize, 720] {
        let net = NetworkBuilder::paper(n, 2007).build().unwrap();
        net.check();
        let cff = net.broadcast(Protocol::ImprovedCff);
        assert!(cff.completed(), "n={n}: {}/{}", cff.delivered, cff.targets);
        assert!(cff.rounds <= cff.bound);
        let dfo = net.broadcast(Protocol::Dfo);
        assert!(dfo.completed(), "n={n}");
        // The paper's headline gap holds at both extremes.
        assert!(cff.rounds < dfo.rounds, "n={n}");
        assert!(cff.max_awake() < dfo.max_awake(), "n={n}");
    }
}

#[test]
fn link_failures_stall_dfo_but_flooding_routes_around() {
    let net = NetworkBuilder::paper(200, 77).build().unwrap();
    // Cut the links between the sink and its first two tree children: the
    // DFO token cannot leave the root along those edges; CFF reaches the
    // children through any other G-neighbour.
    let sink = net.sink();
    let children: Vec<_> = net.net().tree().children(sink).collect();
    let mut cfg = RunConfig::default();
    for &c in children.iter().take(2) {
        cfg.failures.kill_link(sink, c, 1);
    }

    let dfo = net.broadcast_from(Protocol::Dfo, sink, &cfg);
    let cff = net.broadcast_from(Protocol::ImprovedCff, sink, &cfg);
    assert!(
        cff.delivered >= dfo.delivered,
        "CFF {} < DFO {}",
        cff.delivered,
        dfo.delivered
    );
    // DFO freezes when the token's first hop dies with the link.
    assert!(!dfo.completed(), "severed token links must stall the tour");
}

#[test]
fn sink_departure_keeps_the_network_broadcastable() {
    let mut net = NetworkBuilder::paper(150, 78).build().unwrap();
    // The incremental deployment may make the sink a cut vertex; skip
    // honestly in that case (the operation refuses, which is also tested).
    match net.leave_sink() {
        Ok(report) => {
            assert_eq!(net.len(), 149);
            assert_eq!(net.sink(), report.new_root);
            net.check();
            let out = net.broadcast(Protocol::ImprovedCff);
            assert!(out.completed());
        }
        Err(e) => {
            // Refusal leaves the structure untouched and working.
            eprintln!("sink is a cut vertex here ({e}); refusal path exercised");
            assert_eq!(net.len(), 150);
            assert!(net.broadcast(Protocol::ImprovedCff).completed());
        }
    }
}

#[test]
fn repeated_sink_departures_until_refusal() {
    let mut net = NetworkBuilder::paper(80, 79).build().unwrap();
    let mut departures = 0;
    for _ in 0..10 {
        match net.leave_sink() {
            Ok(_) => {
                departures += 1;
                net.check();
            }
            Err(_) => break,
        }
    }
    // At least the structure survived whatever happened.
    assert!(net.broadcast(Protocol::ImprovedCff).completed());
    assert_eq!(net.len(), 80 - departures);
}
