//! Property-based MCNet testing: relay-lists maintained incrementally
//! through arbitrary churn must always equal a from-scratch recomputation,
//! and group membership semantics must survive joins, departures and
//! re-homing.

use dsnet::cluster::{GroupId, McNet};
use dsnet::graph::NodeId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Join {
        picks: (u16, u16),
        groups: Vec<GroupId>,
    },
    Leave(u16),
    Regroup {
        pick: u16,
        groups: Vec<GroupId>,
    },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let groups = prop::collection::vec(0u16..4, 0..3);
    prop_oneof![
        3 => ((any::<u16>(), any::<u16>()), groups.clone())
            .prop_map(|(picks, groups)| Step::Join { picks, groups }),
        1 => any::<u16>().prop_map(Step::Leave),
        1 => (any::<u16>(), groups).prop_map(|(pick, groups)| Step::Regroup { pick, groups }),
    ]
}

fn apply(mc: &mut McNet, step: &Step) {
    let nodes: Vec<NodeId> = mc.net().tree().nodes().collect();
    match step {
        Step::Join { picks, groups } => {
            let mut nbrs: Vec<NodeId> = [picks.0, picks.1]
                .iter()
                .map(|&i| nodes[i as usize % nodes.len()])
                .collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            mc.move_in(&nbrs, groups).unwrap();
        }
        Step::Leave(i) => {
            if nodes.len() > 2 {
                let _ = mc.move_out(nodes[*i as usize % nodes.len()]);
            }
        }
        Step::Regroup { pick, groups } => {
            let u = nodes[*pick as usize % nodes.len()];
            mc.set_groups(u, groups);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn relay_lists_match_recomputation_under_churn(
        steps in prop::collection::vec(step_strategy(), 1..50),
    ) {
        let mut mc = McNet::with_defaults();
        mc.move_in(&[], &[0]).unwrap();
        for step in &steps {
            apply(&mut mc, step);
        }
        mc.check_relay_consistency().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn relay_semantics_ancestors_of_members(
        steps in prop::collection::vec(step_strategy(), 1..40),
    ) {
        let mut mc = McNet::with_defaults();
        mc.move_in(&[], &[0]).unwrap();
        for step in &steps {
            apply(&mut mc, step);
        }
        // For every group: a node relays g iff a *strict* descendant is a
        // member of g.
        let tree = mc.net().tree();
        for g in 0..4u16 {
            for u in tree.nodes() {
                let has_descendant = tree
                    .subtree_nodes(u)
                    .iter()
                    .any(|&d| d != u && mc.is_target(d, g));
                prop_assert_eq!(
                    mc.should_relay(u, g),
                    has_descendant,
                    "node {} group {}", u, g
                );
            }
        }
    }
}
