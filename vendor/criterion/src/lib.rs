//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `iter` /
//! `iter_batched`, `BenchmarkId`, `BatchSize`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples wall-clock measurement instead of criterion's
//! statistical machinery. Output goes to stdout, one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter (used inside groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

/// Samples per benchmark (compile-time constant keeps runs quick).
const SAMPLES: usize = 15;

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::with_capacity(SAMPLES),
        }
    }

    /// Time `routine`, once per sample after one warm-up call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        for _ in 0..SAMPLES {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..SAMPLES {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(mut self, label: &str) {
        if self.samples.is_empty() {
            println!("bench {label:<50} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let best = self.samples[0];
        println!(
            "bench {label:<50} median {:>12} best {:>12}",
            fmt_duration(median),
            fmt_duration(best)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&name.to_string(), f);
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
        }
    }
}

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    b.report(label);
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{name}", self.prefix), f);
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.prefix), |b| f(b, input));
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` executes harness-less bench binaries with
            // `--test`; there is nothing to verify here, so exit quickly.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
