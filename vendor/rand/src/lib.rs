//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the (small) subset of the `rand` 0.9 API the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension trait (`random`, `random_range`, `random_bool`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, so absolute random streams differ from
//! upstream `rand`, but every determinism property the workspace relies
//! on holds: the same seed always yields the same stream, distinct seeds
//! diverge, and the API is drop-in compatible for the call sites here.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// A uniform double in `[0, 1)` from 53 random bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                lo + (reduce(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i32, i64);

/// Map a random word into `0..span` (multiply-shift; span ≥ 1).
fn reduce(word: u64, span: u64) -> u64 {
    debug_assert!(span >= 1);
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`; panics if the range is empty.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic per seed; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::Rng;

    /// Shuffling and sampling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom as _;
    use super::{Rng as _, SeedableRng};

    #[test]
    fn determinism_and_divergence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let mut diverged = false;
        for _ in 0..32 {
            let x = a.random::<u64>();
            assert_eq!(x, b.random::<u64>());
            diverged |= x != c.random::<u64>();
        }
        assert!(diverged);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn bool_probability_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
