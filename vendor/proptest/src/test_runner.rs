//! Test-case configuration and failure plumbing.

use std::fmt;

/// Harness configuration (`ProptestConfig` in the prelude). Only `cases`
/// is honoured; the remaining fields exist for struct-update
/// compatibility with upstream call sites.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; regression files are not used.
    pub failure_persistence: Option<()>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
            failure_persistence: None,
        }
    }
}

/// Why a generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The inputs were rejected (e.g. by `prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failed property with the given reason.
    pub fn fail<T: fmt::Display>(reason: T) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    /// A rejected case with the given reason.
    pub fn reject<T: fmt::Display>(reason: T) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
