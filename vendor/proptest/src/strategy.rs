//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng as _;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a fresh value from the harness RNG.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Primitive types usable with `any::<T>()`.
pub trait ArbitraryPrim: std::fmt::Debug {
    /// Generate a uniformly random value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_prim {
    ($($t:ty => |$rng:ident| $gen:expr),* $(,)?) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary($rng: &mut StdRng) -> Self {
                $gen
            }
        }
    )*};
}

arbitrary_prim! {
    bool => |rng| rng.random::<u64>() & 1 == 1,
    u8 => |rng| rng.random::<u64>() as u8,
    u16 => |rng| rng.random::<u64>() as u16,
    u32 => |rng| rng.random::<u64>() as u32,
    u64 => |rng| rng.random::<u64>(),
    usize => |rng| rng.random::<u64>() as usize,
    i32 => |rng| rng.random::<u64>() as i32,
    i64 => |rng| rng.random::<u64>() as i64,
    f64 => |rng| rng.random::<f64>(),
}

/// The strategy behind `any::<T>()`.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Any<T> {
    /// A new `any` strategy.
    pub fn new() -> Self {
        Any(PhantomData)
    }
}

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of `prop::collection::vec`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.min..self.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Output of [`prop_oneof!`](crate::prop_oneof): a weighted union of boxed strategies.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: std::fmt::Debug> Union<T> {
    /// A union over weighted arms (at least one, all weights ≥ 1).
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use crate::collection;

    fn rng() -> StdRng {
        use rand::SeedableRng as _;
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_and_maps_compose() {
        let mut r = rng();
        let s = (1u8..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.new_value(&mut r);
            assert!([10, 20, 30, 40].contains(&v));
        }
    }

    #[test]
    fn vec_respects_size_bounds() {
        let mut r = rng();
        let s = collection::vec(any::<u16>(), 2..6);
        for _ in 0..50 {
            let v = s.new_value(&mut r);
            assert!((2..6).contains(&v.len()));
        }
        let fixed = collection::vec(any::<u8>(), 8usize);
        assert_eq!(fixed.new_value(&mut r).len(), 8);
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let s = crate::prop_oneof![
            3 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.new_value(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
