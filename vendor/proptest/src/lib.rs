//! Offline stand-in for the `proptest` crate.
//!
//! Implements exactly the subset of proptest 1.x this workspace uses:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`] macros,
//! [`Strategy`](strategy::Strategy) with `prop_map`/`boxed`, `any::<T>()`, numeric-range and
//! tuple strategies, `prop::collection::vec`, and [`prop_oneof!`].
//!
//! Differences from upstream: case generation is **deterministic** (the
//! RNG is seeded from the test function's name, so runs are reproducible
//! without regression files), and failing cases are reported with their
//! inputs but are **not shrunk**.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` — strategies for primitive types.

    use crate::strategy::{Any, ArbitraryPrim};

    /// The canonical strategy for a primitive type.
    pub fn any<T: ArbitraryPrim>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Sizes accepted by [`vec()`]: a fixed length or a half-open range.
    pub trait IntoSizeRange {
        /// Lower/upper (exclusive) bound of the size range.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty size range for collection::vec");
        VecStrategy { element, min, max }
    }
}

pub mod prelude {
    //! Everything a proptest-based test file needs.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run one generated case body, mapping panics into failures is left to
/// the harness; this is the deterministic per-test RNG constructor.
pub fn rng_for(test_name: &str, case: u32) -> rand::rngs::StdRng {
    use rand::SeedableRng as _;
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    rand::rngs::StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// The property-test harness macro. Supports an optional leading
/// `#![proptest_config(expr)]` followed by any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut rng);)*
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)* ""),
                    $(&$arg),*
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), a, b
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{}\n  both: {:?}", format!($($fmt)+), a);
    }};
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
