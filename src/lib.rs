//! Workspace-level umbrella crate for the dsnet reproduction.
//!
//! This crate exists so that the repository root can carry the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`)
//! required by the reproduction layout. All functionality lives in the
//! member crates; the most convenient entry point is [`dsnet`].

pub use dsnet;
pub use dsnet_cluster as cluster;
pub use dsnet_geom as geom;
pub use dsnet_graph as graph;
pub use dsnet_metrics as metrics;
pub use dsnet_protocols as protocols;
pub use dsnet_radio as radio;
